package core

import (
	"fmt"
	"math/rand"
	"testing"

	"prefmatch/internal/dataset"
	"prefmatch/internal/index"
	"prefmatch/internal/index/paged"
	"prefmatch/internal/prefs"
	"prefmatch/internal/skyline"
	"prefmatch/internal/stats"
	"prefmatch/internal/vec"
)

func buildTree(t testing.TB, items []index.Item, d int) paged.Index {
	t.Helper()
	c := &stats.Counters{}
	tr, err := paged.New(d, &paged.Options{PageSize: 512, Counters: c})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.BulkLoad(items); err != nil {
		t.Fatal(err)
	}
	if err := tr.DropBuffer(); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	return tr
}

// gridItems produces objects on a coarse grid: many duplicates and ties,
// the adversarial case for tie-breaking.
func gridItems(rng *rand.Rand, n, d, grid int) []index.Item {
	items := make([]index.Item, n)
	for i := range items {
		p := make(vec.Point, d)
		for j := range p {
			p[j] = float64(rng.Intn(grid)) / float64(grid-1)
		}
		items[i] = index.Item{ID: index.ObjID(i), Point: p}
	}
	return items
}

// oracle is a local copy of the exhaustive greedy reference (the verify
// package hosts the exported version; core tests keep their own to avoid an
// import cycle in coverage tooling).
func oracle(objs []index.Item, fns []prefs.Function) []Pair {
	aliveO := make([]bool, len(objs))
	aliveF := make([]bool, len(fns))
	for i := range aliveO {
		aliveO[i] = true
	}
	for i := range aliveF {
		aliveF[i] = true
	}
	n := min(len(objs), len(fns))
	var out []Pair
	for len(out) < n {
		bf, bo := -1, -1
		var bk prefs.PairKey
		for fi := range fns {
			if !aliveF[fi] {
				continue
			}
			for oi := range objs {
				if !aliveO[oi] {
					continue
				}
				k := prefs.PairKey{
					Score:  fns[fi].Score(objs[oi].Point),
					ObjSum: objs[oi].Point.Sum(),
					FuncID: fns[fi].ID,
					ObjID:  int(objs[oi].ID),
				}
				if bf == -1 || k.Better(bk) {
					bf, bo, bk = fi, oi, k
				}
			}
		}
		aliveF[bf] = false
		aliveO[bo] = false
		out = append(out, Pair{FuncID: fns[bf].ID, ObjID: objs[bo].ID, Score: bk.Score})
	}
	return out
}

func pairSetEqual(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	m := make(map[int]index.ObjID, len(a))
	for _, p := range a {
		m[p.FuncID] = p.ObjID
	}
	for _, p := range b {
		if got, ok := m[p.FuncID]; !ok || got != p.ObjID {
			return false
		}
	}
	return true
}

// The central equivalence property: every algorithm, in every configuration,
// produces exactly the oracle's matching — across data distributions,
// dimensionalities, tie densities, and |F| vs |O| balances.
func TestAllAlgorithmsMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	type workload struct {
		name  string
		items []index.Item
		fns   []prefs.Function
		d     int
	}
	var workloads []workload
	add := func(name string, items []index.Item, fns []prefs.Function, d int) {
		workloads = append(workloads, workload{name, items, fns, d})
	}
	add("indep-2d", dataset.Independent(120, 2, 1), dataset.Functions(30, 2, 2), 2)
	add("indep-3d", dataset.Independent(150, 3, 3), dataset.Functions(40, 3, 4), 3)
	add("indep-4d", dataset.Independent(100, 4, 5), dataset.Functions(25, 4, 6), 4)
	add("anti-3d", dataset.AntiCorrelated(120, 3, 7), dataset.Functions(30, 3, 8), 3)
	add("corr-3d", dataset.Correlated(120, 3, 9), dataset.Functions(30, 3, 10), 3)
	add("clustered-3d", dataset.Clustered(120, 3, 5, 11), dataset.Functions(30, 3, 12), 3)
	add("zillow", dataset.Zillow(150, 13), dataset.Functions(30, dataset.ZillowDim, 14), dataset.ZillowDim)
	add("ties-2d", gridItems(rng, 100, 2, 3), dataset.Functions(40, 2, 15), 2)
	add("ties-3d", gridItems(rng, 150, 3, 3), dataset.Functions(35, 3, 16), 3)
	add("more-funcs-than-objects", dataset.Independent(25, 3, 17), dataset.Functions(60, 3, 18), 3)
	add("equal-sizes", dataset.Independent(40, 3, 19), dataset.Functions(40, 3, 20), 3)
	add("single-object", dataset.Independent(1, 3, 21), dataset.Functions(10, 3, 22), 3)
	add("single-function", dataset.Independent(50, 3, 23), dataset.Functions(1, 3, 24), 3)
	add("skewed-funcs", dataset.Independent(100, 3, 25), dataset.SkewedFunctions(30, 3, 0.9, 26), 3)

	type config struct {
		name string
		opts Options
	}
	configs := []config{
		{"SB", Options{Algorithm: AlgSB}},
		{"SB-retraverse", Options{Algorithm: AlgSB, SkylineMode: skyline.MaintainRetraverse}},
		{"SB-recompute", Options{Algorithm: AlgSB, SkylineMode: skyline.MaintainRecompute}},
		{"SB-singlepair", Options{Algorithm: AlgSB, DisableMultiPair: true}},
		{"SB-naivethreshold", Options{Algorithm: AlgSB, DisableTightThreshold: true}},
		{"BruteForce", Options{Algorithm: AlgBruteForce}},
		{"Chain", Options{Algorithm: AlgChain}},
	}

	for _, w := range workloads {
		want := oracle(w.items, w.fns)
		for _, cfg := range configs {
			t.Run(w.name+"/"+cfg.name, func(t *testing.T) {
				tree := buildTree(t, w.items, w.d)
				opts := cfg.opts
				got, err := Match(tree, w.fns, &opts)
				if err != nil {
					t.Fatalf("%s/%s: %v", w.name, cfg.name, err)
				}
				if len(got) != len(want) {
					t.Fatalf("%s/%s: %d pairs, want %d", w.name, cfg.name, len(got), len(want))
				}
				if !pairSetEqual(got, want) {
					t.Fatalf("%s/%s: matching differs from oracle\ngot:  %v\nwant: %v", w.name, cfg.name, got, want)
				}
			})
		}
	}
}

// Emission must be progressive and exact: Next returns pairs one at a time,
// then reports completion, and keeps reporting completion afterwards.
func TestProgressiveNext(t *testing.T) {
	items := dataset.Independent(60, 3, 1)
	fns := dataset.Functions(20, 3, 2)
	for _, alg := range []Algorithm{AlgSB, AlgBruteForce, AlgChain} {
		tree := buildTree(t, items, 3)
		m, err := NewMatcher(tree, fns, &Options{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		count := 0
		for {
			_, ok, err := m.Next()
			if err != nil {
				t.Fatalf("%v: %v", alg, err)
			}
			if !ok {
				break
			}
			count++
			if count > len(fns) {
				t.Fatalf("%v: emitted more pairs than functions", alg)
			}
		}
		if count != 20 {
			t.Fatalf("%v: %d pairs, want 20", alg, count)
		}
		for i := 0; i < 3; i++ {
			if _, ok, _ := m.Next(); ok {
				t.Fatalf("%v: Next after completion returned a pair", alg)
			}
		}
	}
}

// Two identical runs must produce the identical emission sequence (not just
// the same set) — determinism matters for reproducible benchmarks.
func TestDeterministicEmission(t *testing.T) {
	items := dataset.AntiCorrelated(200, 3, 5)
	fns := dataset.Functions(50, 3, 6)
	for _, alg := range []Algorithm{AlgSB, AlgBruteForce, AlgChain} {
		run := func() []Pair {
			tree := buildTree(t, items, 3)
			got, err := Match(tree, fns, &Options{Algorithm: alg})
			if err != nil {
				t.Fatal(err)
			}
			return got
		}
		a, b := run(), run()
		if len(a) != len(b) {
			t.Fatalf("%v: lengths differ", alg)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: emission %d differs: %v vs %v", alg, i, a[i], b[i])
			}
		}
	}
}

func TestNewMatcherValidation(t *testing.T) {
	items := dataset.Independent(10, 2, 1)
	fns := dataset.Functions(5, 2, 2)
	tree := buildTree(t, items, 2)

	if _, err := NewMatcher(nil, fns, nil); err == nil {
		t.Fatal("nil tree accepted")
	}
	if _, err := NewMatcher(tree, nil, nil); err == nil {
		t.Fatal("empty function set accepted")
	}
	bad := dataset.Functions(5, 3, 3) // wrong dimension
	if _, err := NewMatcher(tree, bad, nil); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	dup := []prefs.Function{
		prefs.MustFunction(1, []float64{1, 1}),
		prefs.MustFunction(1, []float64{2, 1}),
	}
	if _, err := NewMatcher(tree, dup, nil); err == nil {
		t.Fatal("duplicate function IDs accepted")
	}
	if _, err := NewMatcher(tree, fns, &Options{Algorithm: Algorithm(99)}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

// The headline experimental claim (Fig. 2): SB incurs orders of magnitude
// fewer I/O accesses than Brute Force and Chain.
func TestSBDominatesBaselinesOnIO(t *testing.T) {
	items := dataset.Independent(20000, 3, 1)
	fns := dataset.Functions(400, 3, 2)
	run := func(alg Algorithm) (*stats.Counters, []Pair) {
		c := &stats.Counters{}
		tree := buildTree(t, items, 3)
		tree.SetCounters(c)
		pairs, err := Match(tree, fns, &Options{Algorithm: alg, Counters: c})
		if err != nil {
			t.Fatal(err)
		}
		return c, pairs
	}
	sbC, sbPairs := run(AlgSB)
	bfC, bfPairs := run(AlgBruteForce)
	chC, chPairs := run(AlgChain)
	t.Logf("IO: SB=%d BF=%d Chain=%d", sbC.IOAccesses(), bfC.IOAccesses(), chC.IOAccesses())
	t.Logf("top1: SB=%d BF=%d Chain=%d", sbC.Top1Searches, bfC.Top1Searches, chC.Top1Searches)
	if !pairSetEqual(sbPairs, bfPairs) || !pairSetEqual(sbPairs, chPairs) {
		t.Fatal("algorithms disagree on the matching")
	}
	if sbC.IOAccesses()*10 > bfC.IOAccesses() {
		t.Fatalf("SB should beat BF by >10x on I/O: %d vs %d", sbC.IOAccesses(), bfC.IOAccesses())
	}
	if sbC.IOAccesses()*10 > chC.IOAccesses() {
		t.Fatalf("SB should beat Chain by >10x on I/O: %d vs %d", sbC.IOAccesses(), chC.IOAccesses())
	}
	// Chain performs more top-1 searches than Brute Force (§ V).
	if chC.Top1Searches <= bfC.Top1Searches {
		t.Logf("note: Chain top-1 searches (%d) not above BF (%d) at this scale", chC.Top1Searches, bfC.Top1Searches)
	}
}

// Multi-pair emission (§ IV-C) must reduce the number of loops (and thus
// skyline-maintenance calls), without changing the matching.
func TestMultiPairReducesLoops(t *testing.T) {
	items := dataset.Independent(5000, 3, 3)
	fns := dataset.Functions(200, 3, 4)
	run := func(disable bool) (*stats.Counters, []Pair) {
		c := &stats.Counters{}
		tree := buildTree(t, items, 3)
		tree.SetCounters(c)
		pairs, err := Match(tree, fns, &Options{Algorithm: AlgSB, DisableMultiPair: disable, Counters: c})
		if err != nil {
			t.Fatal(err)
		}
		return c, pairs
	}
	multi, mp := run(false)
	single, sp := run(true)
	if !pairSetEqual(mp, sp) {
		t.Fatal("multi-pair changed the matching")
	}
	t.Logf("loops: multi=%d single=%d; updates: multi=%d single=%d",
		multi.Loops, single.Loops, multi.SkylineUpdates, single.SkylineUpdates)
	if multi.Loops > single.Loops {
		t.Fatalf("multi-pair used more loops (%d) than single (%d)", multi.Loops, single.Loops)
	}
	if single.Loops != int64(len(sp)) {
		t.Fatalf("single-pair mode must use one loop per pair: %d loops, %d pairs", single.Loops, len(sp))
	}
}

// SB must not modify the object tree; BF and Chain consume it.
func TestTreeMutationContract(t *testing.T) {
	items := dataset.Independent(200, 3, 7)
	fns := dataset.Functions(50, 3, 8)

	tree := buildTree(t, items, 3)
	if _, err := Match(tree, fns, &Options{Algorithm: AlgSB}); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != len(items) {
		t.Fatalf("SB modified the tree: %d items left", tree.Len())
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}

	for _, alg := range []Algorithm{AlgBruteForce, AlgChain} {
		tree := buildTree(t, items, 3)
		if _, err := Match(tree, fns, &Options{Algorithm: alg}); err != nil {
			t.Fatal(err)
		}
		if tree.Len() != len(items)-len(fns) {
			t.Fatalf("%v: tree has %d items, want %d", alg, tree.Len(), len(items)-len(fns))
		}
		if err := tree.Validate(); err != nil {
			t.Fatalf("%v left an invalid tree: %v", alg, err)
		}
	}
}

func TestCountersExposed(t *testing.T) {
	items := dataset.Independent(100, 2, 9)
	fns := dataset.Functions(20, 2, 10)
	c := &stats.Counters{}
	tree := buildTree(t, items, 2)
	m, err := NewMatcher(tree, fns, &Options{Algorithm: AlgSB, Counters: c})
	if err != nil {
		t.Fatal(err)
	}
	if m.Counters() != c {
		t.Fatal("Counters() does not return the configured sink")
	}
	if _, err := MatchAll(m); err != nil {
		t.Fatal(err)
	}
	if c.PairsEmitted != 20 {
		t.Fatalf("PairsEmitted = %d, want 20", c.PairsEmitted)
	}
	if c.SkylineUpdates == 0 || c.TAListAccesses == 0 {
		t.Fatalf("SB work counters empty: %+v", c)
	}
}

// Exhausting the objects (|O| < |F|) must leave the surplus functions
// unmatched in every algorithm.
func TestObjectExhaustion(t *testing.T) {
	items := dataset.Independent(15, 3, 11)
	fns := dataset.Functions(40, 3, 12)
	want := oracle(items, fns)
	for _, alg := range []Algorithm{AlgSB, AlgBruteForce, AlgChain} {
		tree := buildTree(t, items, 3)
		got, err := Match(tree, fns, &Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(got) != 15 {
			t.Fatalf("%v: %d pairs, want 15", alg, len(got))
		}
		if !pairSetEqual(got, want) {
			t.Fatalf("%v: differs from oracle", alg)
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	for alg, want := range map[Algorithm]string{
		AlgSB: "SB", AlgBruteForce: "BruteForce", AlgChain: "Chain",
	} {
		if alg.String() != want {
			t.Fatalf("%d.String() = %q", alg, alg.String())
		}
	}
	if Algorithm(42).String() == "" {
		t.Fatal("unknown algorithm must still render")
	}
}

func TestPairString(t *testing.T) {
	p := Pair{FuncID: 3, ObjID: 7, Score: 0.5}
	if got := p.String(); got != "(f3, o7, 0.500000)" {
		t.Fatalf("Pair.String() = %q", got)
	}
}

// Fuzz-style randomized equivalence sweep: many small random instances,
// seeds reported on failure for reproduction.
func TestRandomizedEquivalenceSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short mode")
	}
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(4)
		nObj := 5 + rng.Intn(120)
		nFn := 1 + rng.Intn(60)
		var items []index.Item
		switch rng.Intn(4) {
		case 0:
			items = dataset.Independent(nObj, d, seed*31+1)
		case 1:
			items = dataset.AntiCorrelated(nObj, d, seed*31+2)
		case 2:
			items = gridItems(rng, nObj, d, 2+rng.Intn(4))
		default:
			items = dataset.Correlated(nObj, d, seed*31+3)
		}
		fns := dataset.Functions(nFn, d, seed*31+4)
		want := oracle(items, fns)
		for _, alg := range []Algorithm{AlgSB, AlgBruteForce, AlgChain} {
			tree := buildTree(t, items, d)
			got, err := Match(tree, fns, &Options{Algorithm: alg})
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, alg, err)
			}
			if !pairSetEqual(got, want) {
				t.Fatalf("seed %d %v: matching differs from oracle (d=%d, |O|=%d, |F|=%d)\ngot:  %v\nwant: %v",
					seed, alg, d, nObj, nFn, got, want)
			}
		}
	}
}

func BenchmarkMatchSmall(b *testing.B) {
	items := dataset.Independent(2000, 3, 1)
	fns := dataset.Functions(100, 3, 2)
	for _, alg := range []Algorithm{AlgSB, AlgBruteForce, AlgChain} {
		b.Run(alg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				tree := buildTree(b, items, 3)
				b.StartTimer()
				if _, err := Match(tree, fns, &Options{Algorithm: alg}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

var _ = fmt.Sprintf // keep fmt imported for debug helpers
