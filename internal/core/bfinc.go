package core

import (
	"prefmatch/internal/index"
	"prefmatch/internal/prefs"
	"prefmatch/internal/stats"
)

// newBFIncremental is the improved Brute Force variant built on *incremental*
// ranked search, the adaptation style the paper's introduction sketches for
// [2] ("replacing the progressive NN search by incremental top-k search,
// e.g., using the method of [3]").
//
// It is the same greedy wave loop as classic Brute Force (candidateMatcher)
// with the incremental ObjectSource plugged in: instead of deleting assigned
// objects from the R-tree and re-running top-1 searches from scratch
// (§ III-A), every function keeps a resumable stream over the unmodified
// tree; when a function's current candidate is assigned to someone else, the
// stream simply advances to the next unassigned object. No tree deletions,
// no restarted searches — each object of each function's ranking is produced
// at most once.
//
// The variant exists as an ablation (AlgBruteForceIncremental): it
// quantifies how much of classic Brute Force's cost is re-search, and it
// still loses to SB, which bounds its working set by the skyline.
func newBFIncremental(tree index.ObjectIndex, fns []prefs.Function, opts *Options, c *stats.Counters) (*candidateMatcher, error) {
	return newCandidateMatcher(newIncSource(tree, fns, c), fns, opts, c), nil
}
