package core

import (
	"prefmatch/internal/index"
	"prefmatch/internal/prefs"
	"prefmatch/internal/stats"
	"prefmatch/internal/topk"
)

// bfIncMatcher is an improved Brute Force variant built on *incremental*
// ranked search, the adaptation style the paper's introduction sketches for
// [2] ("replacing the progressive NN search by incremental top-k search,
// e.g., using the method of [3]").
//
// Instead of deleting assigned objects from the R-tree and re-running top-1
// searches from scratch (§ III-A), every function keeps a resumable
// IncSearch over the unmodified tree; when a function's current candidate
// is assigned to someone else, the search simply advances to the next
// unassigned object. No tree deletions, no restarted searches — each object
// of each function's ranking is produced at most once.
//
// The variant exists as an ablation (AlgBruteForceIncremental): it
// quantifies how much of classic Brute Force's cost is re-search, and it
// still loses to SB, which bounds its working set by the skyline.
type bfIncMatcher struct {
	tree index.ObjectIndex
	fns  []prefs.Function
	c    *stats.Counters

	started  bool
	alive    []bool
	searches []*topk.IncSearch
	cache    []bfCache
	live     int
	resid    *residual
	assigned map[index.ObjID]bool // objects with exhausted capacity
}

func newBFIncremental(tree index.ObjectIndex, fns []prefs.Function, opts *Options, c *stats.Counters) (*bfIncMatcher, error) {
	m := &bfIncMatcher{
		tree:     tree,
		fns:      fns,
		c:        c,
		alive:    make([]bool, len(fns)),
		searches: make([]*topk.IncSearch, len(fns)),
		cache:    make([]bfCache, len(fns)),
		live:     len(fns),
		resid:    newResidual(opts.Capacities),
		assigned: map[index.ObjID]bool{},
	}
	for i := range m.alive {
		m.alive[i] = true
	}
	return m, nil
}

func (m *bfIncMatcher) Counters() *stats.Counters { return m.c }

// advance moves function i's incremental search to its best not-yet-
// exhausted object.
func (m *bfIncMatcher) advance(i int) error {
	for {
		res, ok, err := m.searches[i].Next()
		if err != nil {
			return err
		}
		if !ok {
			m.cache[i] = bfCache{}
			return nil
		}
		if m.assigned[res.ID] {
			continue
		}
		m.cache[i] = bfCache{has: true, objID: res.ID, point: res.Point, sum: res.Point.Sum(), score: res.Score}
		return nil
	}
}

func (m *bfIncMatcher) Next() (Pair, bool, error) {
	if !m.started {
		for i := range m.fns {
			m.searches[i] = topk.NewIncSearch(m.tree, m.fns[i], m.c)
			if err := m.advance(i); err != nil {
				return Pair{}, false, err
			}
		}
		m.started = true
	}
	if m.live == 0 {
		return Pair{}, false, nil
	}
	best := -1
	for i := range m.fns {
		if !m.alive[i] || !m.cache[i].has {
			continue
		}
		if best == -1 {
			best = i
			continue
		}
		a := prefs.PairKey{Score: m.cache[i].score, ObjSum: m.cache[i].sum, FuncID: m.fns[i].ID, ObjID: int(m.cache[i].objID)}
		b := prefs.PairKey{Score: m.cache[best].score, ObjSum: m.cache[best].sum, FuncID: m.fns[best].ID, ObjID: int(m.cache[best].objID)}
		if a.Better(b) {
			best = i
		}
	}
	if best == -1 {
		return Pair{}, false, nil // objects exhausted
	}
	won := m.cache[best]
	m.alive[best] = false
	m.live--
	m.c.PairsEmitted++
	m.c.Loops++
	if m.resid.take(won.objID) {
		m.assigned[won.objID] = true
		for i := range m.fns {
			if m.alive[i] && m.cache[i].has && m.cache[i].objID == won.objID {
				if err := m.advance(i); err != nil {
					return Pair{}, false, err
				}
			}
		}
	}
	return Pair{FuncID: m.fns[best].ID, ObjID: won.objID, Score: won.score}, true, nil
}
