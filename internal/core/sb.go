package core

import (
	"fmt"
	"sort"

	"prefmatch/internal/index"
	"prefmatch/internal/prefs"
	"prefmatch/internal/skyline"
	"prefmatch/internal/stats"
	"prefmatch/internal/ta"
)

// sbMatcher is the paper's skyline-based algorithm (Algorithm 1 with the
// § IV modules):
//
//  1. compute the skyline of O with BBS, tracking pruned entries;
//  2. for every skyline object, find its best function by TA-based
//     reverse top-1 over the coefficient lists (BestPair, § IV-A);
//  3. report every pair (f, o) with o.fbest = f and f.obest = o — all are
//     stable by Property 1 (§ IV-C); at least one always exists;
//  4. remove the matched functions and objects, update the skyline through
//     the pruned-entry lists (§ IV-B), and repeat.
//
// Between loops the matcher caches each skyline object's best function
// (invalidated only when that function is assigned) and each candidate
// function's best object (invalidated when that object is assigned, updated
// when new objects enter the skyline), so per-loop work is proportional to
// what actually changed.
type sbMatcher struct {
	fns   []prefs.Function
	lists *ta.Lists
	maint SkylineSource
	c     *stats.Counters

	multiPair bool
	started   bool
	done      bool
	resid     *residual

	// ocache maps a skyline object ID to its best function; entries exist
	// for exactly the current skyline members.
	ocache map[index.ObjID]obCache
	// fcache holds, per function position, the function's best object over
	// the current skyline; entries may be stale-marked (valid=false) but
	// never wrong. Dense indexing keeps the refresh pass in function order
	// (a map would iterate randomly) and allocation-free.
	fcache []fnCache

	queue pairQueue // emitted but not yet returned by Next

	loopScratch // per-loop reusable state, shared shape with genericSB
}

type obCache struct {
	fnIdx int
	score float64
}

type fnCache struct {
	obj   *skyline.Object
	score float64
	valid bool
}

func newSB(tree index.ObjectIndex, fns []prefs.Function, opts *Options, c *stats.Counters) (*sbMatcher, error) {
	return newSBOver(skyline.New(tree, opts.SkylineMode, c), fns, opts, c)
}

// newSBOver builds the SB loop over an explicit skyline source: the
// single-index skyline.Maintainer, or the sharded cross-shard merge. The
// loop's emissions depend only on the skyline *sets* the source reports
// (every per-loop decision is resolved by the deterministic preference
// orders, never by discovery order), so any source that maintains the
// correct skyline of the remaining objects yields the identical stream.
func newSBOver(src SkylineSource, fns []prefs.Function, opts *Options, c *stats.Counters) (*sbMatcher, error) {
	lists, err := ta.NewLists(fns, c)
	if err != nil {
		return nil, err
	}
	lists.TightThreshold = !opts.DisableTightThreshold
	return &sbMatcher{
		fns:         fns,
		lists:       lists,
		maint:       src,
		c:           c,
		multiPair:   !opts.DisableMultiPair,
		resid:       newResidual(opts.Capacities),
		ocache:      map[index.ObjID]obCache{},
		fcache:      make([]fnCache, len(fns)),
		loopScratch: newLoopScratch(len(fns)),
	}, nil
}

func (m *sbMatcher) Counters() *stats.Counters { return m.c }

func (m *sbMatcher) Next() (Pair, bool, error) {
	if p, ok := m.queue.pop(); ok {
		return p, true, nil
	}
	if m.done {
		return Pair{}, false, nil
	}
	if !m.started {
		if err := m.start(); err != nil {
			return Pair{}, false, err
		}
	}
	for m.queue.len() == 0 {
		if m.lists.AliveCount() == 0 || m.maint.Size() == 0 {
			m.done = true
			return Pair{}, false, nil
		}
		if err := m.loop(); err != nil {
			return Pair{}, false, err
		}
	}
	p, _ := m.queue.pop()
	return p, true, nil
}

// start computes the initial skyline and the best function of every member.
func (m *sbMatcher) start() error {
	if err := m.maint.Compute(); err != nil {
		return err
	}
	for _, o := range m.maint.Skyline() {
		idx, score, ok := m.lists.ReverseTop1(o.Point)
		if !ok {
			return fmt.Errorf("core: no functions for skyline object %d", o.ID)
		}
		m.ocache[o.ID] = obCache{fnIdx: idx, score: score}
	}
	m.started = true
	return nil
}

// loop runs one iteration of Algorithm 1, emitting at least one stable pair
// into the queue.
func (m *sbMatcher) loop() error {
	m.c.Loops++
	m.gen++
	sky := m.maint.Skyline()

	// Fbest: the distinct best functions over the skyline, in deterministic
	// (skyline discovery) order.
	fbestOrder := m.fbest[:0]
	for _, o := range sky {
		oc, ok := m.ocache[o.ID]
		if !ok {
			return fmt.Errorf("core: missing ocache for skyline object %d", o.ID)
		}
		if m.fbestGen[oc.fnIdx] != m.gen {
			m.fbestGen[oc.fnIdx] = m.gen
			fbestOrder = append(fbestOrder, oc.fnIdx)
		}
	}
	m.fbest = fbestOrder

	// Ensure every f in Fbest has a valid best object over the skyline.
	for _, fIdx := range fbestOrder {
		if m.fcache[fIdx].valid {
			continue
		}
		best := (*skyline.Object)(nil)
		bestScore := 0.0
		f := m.fns[fIdx]
		for _, o := range sky {
			m.c.ScoreEvals++
			s := f.Score(o.Point)
			if best == nil || prefs.BetterObj(s, o.Sum, int(o.ID), bestScore, best.Sum, int(best.ID)) {
				best, bestScore = o, s
			}
		}
		m.fcache[fIdx] = fnCache{obj: best, score: bestScore, valid: true}
	}

	// Collect the mutually-best pairs (§ IV-C). Each is stable by
	// Property 1. Without multi-pair (ablation), keep only the globally
	// best one.
	pairs := m.pairs[:0]
	for _, fIdx := range fbestOrder {
		fc := m.fcache[fIdx]
		if m.ocache[fc.obj.ID].fnIdx == fIdx {
			pairs = append(pairs, matchedPair{fIdx: fIdx, obj: fc.obj, score: fc.score})
		}
	}
	m.pairs = pairs
	if len(pairs) == 0 {
		return fmt.Errorf("core: no stable pair found in loop %d (invariant violation)", m.c.Loops)
	}
	// Order by the global pair order; the first element is the pair the
	// plain greedy process would emit now.
	sort.Slice(pairs, func(i, j int) bool {
		a := prefs.PairKey{Score: pairs[i].score, ObjSum: pairs[i].obj.Sum, FuncID: m.fns[pairs[i].fIdx].ID, ObjID: int(pairs[i].obj.ID)}
		b := prefs.PairKey{Score: pairs[j].score, ObjSum: pairs[j].obj.Sum, FuncID: m.fns[pairs[j].fIdx].ID, ObjID: int(pairs[j].obj.ID)}
		return a.Better(b)
	})
	if !m.multiPair {
		pairs = pairs[:1]
	}

	// Emit; remove functions always, objects only when their capacity is
	// exhausted (the default capacity is 1, the paper's 1-1 model).
	removedObjs := m.removed[:0]
	for _, p := range pairs {
		m.queue.push(Pair{FuncID: m.fns[p.fIdx].ID, ObjID: p.obj.ID, Score: p.score})
		m.c.PairsEmitted++
		m.matchedGen[p.fIdx] = m.gen
		if err := m.lists.Remove(p.fIdx); err != nil {
			return err
		}
		m.fcache[p.fIdx] = fnCache{}
		if m.resid.take(p.obj.ID) {
			removedObjs = append(removedObjs, p.obj.ID)
			delete(m.ocache, p.obj.ID)
		}
		// A surviving object keeps its skyline slot; its ocache entry
		// points at the just-matched function and is refreshed below.
	}
	m.removed = removedObjs

	// Skyline maintenance (§ IV-B): promote what the removed objects were
	// exclusively dominating.
	added, err := m.maint.Remove(removedObjs)
	if err != nil {
		return err
	}

	if m.lists.AliveCount() == 0 {
		return nil
	}

	// Refresh ocache: objects whose best function was just assigned need a
	// new reverse top-1; new skyline members need their first one.
	for _, o := range m.maint.Skyline() {
		oc, ok := m.ocache[o.ID]
		if ok && m.matchedGen[oc.fnIdx] != m.gen {
			continue
		}
		idx, score, okTA := m.lists.ReverseTop1(o.Point)
		if !okTA {
			return fmt.Errorf("core: function set exhausted with objects remaining")
		}
		m.ocache[o.ID] = obCache{fnIdx: idx, score: score}
	}

	// Refresh fcache: invalidate entries whose best object was assigned,
	// then challenge the surviving entries with the newly promoted objects.
	// Dense iteration runs in function order — the map it replaced iterated
	// randomly.
	m.removedQ.reset(removedObjs)
	for fIdx := range m.fcache {
		fc := m.fcache[fIdx]
		if !fc.valid {
			continue
		}
		if m.removedQ.has(fc.obj.ID) {
			fc.valid = false
			m.fcache[fIdx] = fc
			continue
		}
		for _, o := range added {
			m.c.ScoreEvals++
			s := m.fns[fIdx].Score(o.Point)
			if prefs.BetterObj(s, o.Sum, int(o.ID), fc.score, fc.obj.Sum, int(fc.obj.ID)) {
				fc.obj, fc.score = o, s
			}
		}
		m.fcache[fIdx] = fc
	}
	return nil
}
