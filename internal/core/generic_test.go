package core

import (
	"math/rand"
	"testing"

	"prefmatch/internal/dataset"
	"prefmatch/internal/index"
	"prefmatch/internal/prefs"
	"prefmatch/internal/skyline"
)

// genericOracle is the exhaustive greedy reference over arbitrary monotone
// preferences.
func genericOracle(objs []index.Item, gps []GenericPreference) []Pair {
	aliveO := make([]bool, len(objs))
	aliveF := make([]bool, len(gps))
	for i := range aliveO {
		aliveO[i] = true
	}
	for i := range aliveF {
		aliveF[i] = true
	}
	n := min(len(objs), len(gps))
	var out []Pair
	for len(out) < n {
		bf, bo := -1, -1
		var bk prefs.PairKey
		for fi := range gps {
			if !aliveF[fi] {
				continue
			}
			for oi := range objs {
				if !aliveO[oi] {
					continue
				}
				k := prefs.PairKey{
					Score:  gps[fi].Pref.Score(objs[oi].Point),
					ObjSum: objs[oi].Point.Sum(),
					FuncID: gps[fi].ID,
					ObjID:  int(objs[oi].ID),
				}
				if bf == -1 || k.Better(bk) {
					bf, bo, bk = fi, oi, k
				}
			}
		}
		aliveF[bf] = false
		aliveO[bo] = false
		out = append(out, Pair{FuncID: gps[bf].ID, ObjID: objs[bo].ID, Score: bk.Score})
	}
	return out
}

// mixedPreferences builds a set mixing linear, Cobb-Douglas and min-score
// preferences.
func mixedPreferences(rng *rand.Rand, n, d int) []GenericPreference {
	gps := make([]GenericPreference, n)
	for i := range gps {
		w := make([]float64, d)
		for j := range w {
			w[j] = rng.Float64() + 0.05
		}
		var p prefs.Preference
		switch i % 3 {
		case 0:
			p = prefs.MustFunction(i, w)
		case 1:
			cd, err := prefs.NewCobbDouglas(i, w)
			if err != nil {
				panic(err)
			}
			p = cd
		default:
			ms, err := prefs.NewMinScore(i, w)
			if err != nil {
				panic(err)
			}
			p = ms
		}
		gps[i] = GenericPreference{ID: i, Pref: p}
	}
	return gps
}

func TestGenericMatchersAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		name  string
		items []index.Item
		d     int
	}{
		{"indep-3d", dataset.Independent(150, 3, 2), 3},
		{"anti-3d", dataset.AntiCorrelated(120, 3, 3), 3},
		{"zillow", dataset.Zillow(120, 4), dataset.ZillowDim},
		{"ties", gridItems(rng, 100, 2, 3), 2},
	} {
		gps := mixedPreferences(rng, 35, tc.d)
		want := genericOracle(tc.items, gps)
		for _, alg := range []Algorithm{AlgSB, AlgBruteForce} {
			tree := buildTree(t, tc.items, tc.d)
			got, err := MatchGeneric(tree, gps, &Options{Algorithm: alg})
			if err != nil {
				t.Fatalf("%s/%v: %v", tc.name, alg, err)
			}
			if !pairSetEqual(got, want) {
				t.Fatalf("%s/%v: matching differs from oracle\ngot:  %v\nwant: %v", tc.name, alg, got, want)
			}
		}
	}
}

func TestGenericLinearAgreesWithLinearPath(t *testing.T) {
	// Wrapping plain linear functions in the generic matcher must give the
	// same matching as the TA-based linear path.
	items := dataset.Independent(200, 3, 5)
	fns := dataset.Functions(40, 3, 6)
	gps := make([]GenericPreference, len(fns))
	for i, f := range fns {
		gps[i] = GenericPreference{ID: f.ID, Pref: f}
	}
	linTree := buildTree(t, items, 3)
	want, err := Match(linTree, fns, &Options{Algorithm: AlgSB})
	if err != nil {
		t.Fatal(err)
	}
	genTree := buildTree(t, items, 3)
	got, err := MatchGeneric(genTree, gps, &Options{Algorithm: AlgSB})
	if err != nil {
		t.Fatal(err)
	}
	if !pairSetEqual(got, want) {
		t.Fatal("generic SB disagrees with linear SB on linear input")
	}
}

func TestGenericValidation(t *testing.T) {
	items := dataset.Independent(10, 2, 7)
	tree := buildTree(t, items, 2)
	gps := mixedPreferences(rand.New(rand.NewSource(8)), 5, 2)

	if _, err := NewGenericMatcher(nil, gps, nil); err == nil {
		t.Fatal("nil tree accepted")
	}
	if _, err := NewGenericMatcher(tree, nil, nil); err == nil {
		t.Fatal("empty preferences accepted")
	}
	if _, err := NewGenericMatcher(tree, []GenericPreference{{ID: 1, Pref: nil}}, nil); err == nil {
		t.Fatal("nil preference accepted")
	}
	dup := []GenericPreference{
		{ID: 1, Pref: prefs.MustFunction(1, []float64{1, 1})},
		{ID: 1, Pref: prefs.MustFunction(1, []float64{2, 1})},
	}
	if _, err := NewGenericMatcher(tree, dup, nil); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
	if _, err := NewGenericMatcher(tree, gps, &Options{Algorithm: AlgChain}); err == nil {
		t.Fatal("Chain must be rejected for generic preferences")
	}
	if _, err := NewGenericMatcher(tree, gps, &Options{Algorithm: Algorithm(9)}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestGenericProgressiveAndExhaustion(t *testing.T) {
	items := dataset.Independent(10, 3, 9)
	gps := mixedPreferences(rand.New(rand.NewSource(10)), 25, 3)
	for _, alg := range []Algorithm{AlgSB, AlgBruteForce} {
		tree := buildTree(t, items, 3)
		m, err := NewGenericMatcher(tree, gps, &Options{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		count := 0
		for {
			_, ok, err := m.Next()
			if err != nil {
				t.Fatalf("%v: %v", alg, err)
			}
			if !ok {
				break
			}
			count++
		}
		if count != 10 {
			t.Fatalf("%v: %d pairs, want 10 (object exhaustion)", alg, count)
		}
		if _, ok, _ := m.Next(); ok {
			t.Fatalf("%v: emitted after completion", alg)
		}
	}
}

func TestGenericSkylineModesAgree(t *testing.T) {
	items := dataset.AntiCorrelated(150, 3, 11)
	gps := mixedPreferences(rand.New(rand.NewSource(12)), 30, 3)
	want := genericOracle(items, gps)
	for _, mode := range []skyline.Mode{skyline.MaintainPlist, skyline.MaintainRetraverse, skyline.MaintainRecompute} {
		tree := buildTree(t, items, 3)
		got, err := MatchGeneric(tree, gps, &Options{Algorithm: AlgSB, SkylineMode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if !pairSetEqual(got, want) {
			t.Fatalf("mode %v: matching differs", mode)
		}
	}
}

func TestGenericRandomizedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short mode")
	}
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(3)
		nObj := 5 + rng.Intn(80)
		nPref := 1 + rng.Intn(40)
		var items []index.Item
		if rng.Intn(2) == 0 {
			items = dataset.Independent(nObj, d, seed*13+1)
		} else {
			items = gridItems(rng, nObj, d, 2+rng.Intn(3))
		}
		gps := mixedPreferences(rng, nPref, d)
		want := genericOracle(items, gps)
		for _, alg := range []Algorithm{AlgSB, AlgBruteForce} {
			tree := buildTree(t, items, d)
			got, err := MatchGeneric(tree, gps, &Options{Algorithm: alg})
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, alg, err)
			}
			if !pairSetEqual(got, want) {
				t.Fatalf("seed %d %v: differs from oracle (d=%d |O|=%d |P|=%d)", seed, alg, d, nObj, nPref)
			}
		}
	}
}
