package core

import (
	"fmt"

	"prefmatch/internal/index"
	"prefmatch/internal/memrtree"
	"prefmatch/internal/prefs"
	"prefmatch/internal/stats"
	"prefmatch/internal/vec"
)

// chainMatcher is the Chain baseline of § V, adapting the spatial-matching
// algorithm of Wong et al. [2]: the functions are indexed by a main-memory
// R-tree built on their weights, the objects by the disk R-tree, and the
// nearest-neighbour module of [2] is replaced by top-1 search in the
// corresponding tree [3].
//
// A chain starts at an arbitrary unassigned function and alternates
// best-partner hops (function → its best object → that object's best
// function → ...). Because every hop is a strict improvement in the global
// pair order unless it returns to the previous element, the chain reaches a
// mutually-best — hence stable — pair in finitely many hops. The pair is
// emitted, the function leaves its tree (and the object its source, once
// its capacity is exhausted), and the walk resumes from the element below
// them on the stack.
//
// The object side goes through ObjectSource: classic Chain uses the
// restarting source (top-1 re-search against a tree the matcher deletes
// from, the paper's § V cost profile); the sharded wave plugs in the
// per-shard merge instead. The walk only consumes candidate values, so both
// emit the identical stream.
type chainMatcher struct {
	src   ObjectSource
	ftree *memrtree.Tree
	fns   []prefs.Function
	c     *stats.Counters

	started  bool
	alive    []bool
	assigned map[index.ObjID]bool // objects with exhausted capacity
	resid    *residual
	live     int
	stack    []chainElem
	seek     int // next seed candidate (smallest untried function index)
}

type chainElem struct {
	isFn  bool
	fnIdx int
	objID index.ObjID
	point vec.Point
	sum   float64
	score float64 // score of the hop that discovered this element
}

func newChain(tree index.ObjectIndex, fns []prefs.Function, opts *Options, c *stats.Counters) (*chainMatcher, error) {
	return newChainOver(newRestartSource(tree, fns, c), fns, opts, c)
}

func newChainOver(src ObjectSource, fns []prefs.Function, opts *Options, c *stats.Counters) (*chainMatcher, error) {
	ftree, err := memrtree.New(src.Dim(), opts.ChainFanOut, c)
	if err != nil {
		return nil, err
	}
	m := &chainMatcher{
		src:      src,
		ftree:    ftree,
		fns:      fns,
		c:        c,
		alive:    make([]bool, len(fns)),
		assigned: map[index.ObjID]bool{},
		resid:    newResidual(opts.Capacities),
		live:     len(fns),
	}
	for i := range m.alive {
		m.alive[i] = true
	}
	return m, nil
}

func (m *chainMatcher) Counters() *stats.Counters { return m.c }

func (m *chainMatcher) Next() (Pair, bool, error) {
	if !m.started {
		for i := range m.fns {
			if err := m.ftree.Insert(memrtree.Item{Idx: i, ID: m.fns[i].ID, Weights: m.fns[i].Weights}); err != nil {
				return Pair{}, false, err
			}
		}
		m.started = true
	}
	for {
		if m.live == 0 || m.src.Len() == 0 {
			return Pair{}, false, nil
		}
		// An element can occur twice in one chain; after its first
		// occurrence is matched, later occurrences are stale. Pop them
		// before they are processed (they cannot trigger false matches
		// below the top, because matched members are gone from both sides).
		for len(m.stack) > 0 {
			top := m.stack[len(m.stack)-1]
			if (top.isFn && !m.alive[top.fnIdx]) || (!top.isFn && m.assigned[top.objID]) {
				m.stack = m.stack[:len(m.stack)-1]
				continue
			}
			break
		}
		if len(m.stack) == 0 {
			// Seed with the smallest-index unassigned function.
			for m.seek < len(m.fns) && !m.alive[m.seek] {
				m.seek++
			}
			if m.seek >= len(m.fns) {
				return Pair{}, false, nil
			}
			m.stack = append(m.stack, chainElem{isFn: true, fnIdx: m.seek})
		}
		top := m.stack[len(m.stack)-1]
		if top.isFn {
			cand, ok, err := m.src.Best(top.fnIdx)
			if err != nil {
				return Pair{}, false, err
			}
			if !ok {
				// Objects exhausted: no further pairs are possible.
				return Pair{}, false, nil
			}
			if n := len(m.stack); n >= 2 && !m.stack[n-2].isFn && m.stack[n-2].objID == cand.ObjID {
				// Mutual best: f's best object is the object that proposed f.
				return m.emit(top.fnIdx, m.stack[n-2])
			}
			m.c.Loops++
			m.stack = append(m.stack, chainElem{
				objID: cand.ObjID, point: cand.Point, sum: cand.Sum, score: cand.Score,
			})
			continue
		}
		it, score, ok := m.ftree.BestFor(top.point)
		if !ok {
			return Pair{}, false, fmt.Errorf("core: function tree empty with %d live functions", m.live)
		}
		if n := len(m.stack); n >= 2 && m.stack[n-2].isFn && m.stack[n-2].fnIdx == it.Idx {
			return m.emit(it.Idx, top)
		}
		m.c.Loops++
		m.stack = append(m.stack, chainElem{isFn: true, fnIdx: it.Idx, score: score})
	}
}

// emit reports the mutually-best pair (fnIdx, obj), removes the function
// from its tree (and the object from its source once its capacity is
// exhausted), and pops the chain back to the last still-available element.
func (m *chainMatcher) emit(fnIdx int, obj chainElem) (Pair, bool, error) {
	// The pair's score: the function applied to the object.
	m.c.ScoreEvals++
	score := m.fns[fnIdx].Score(obj.point)

	exhausted := m.resid.take(obj.objID)
	if exhausted {
		if err := m.src.Remove(obj.objID, obj.point); err != nil {
			return Pair{}, false, err
		}
		m.assigned[obj.objID] = true
	}
	if err := m.ftree.Delete(fnIdx, m.fns[fnIdx].Weights); err != nil {
		return Pair{}, false, err
	}
	m.alive[fnIdx] = false
	m.live--
	m.c.PairsEmitted++

	// Pop every trailing stack element that refers to a gone member: the
	// matched function, and the object if its capacity is exhausted. An
	// object with residual capacity stays on the stack, and the walk
	// resumes from it.
	for len(m.stack) > 0 {
		top := m.stack[len(m.stack)-1]
		if (top.isFn && top.fnIdx == fnIdx) || (!top.isFn && exhausted && top.objID == obj.objID) {
			m.stack = m.stack[:len(m.stack)-1]
			continue
		}
		break
	}
	return Pair{FuncID: m.fns[fnIdx].ID, ObjID: obj.objID, Score: score}, true, nil
}
