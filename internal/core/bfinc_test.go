package core

import (
	"math/rand"
	"testing"

	"prefmatch/internal/dataset"
	"prefmatch/internal/index"
	"prefmatch/internal/stats"
)

func TestBFIncrementalMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		name  string
		items []index.Item
		nFn   int
		d     int
	}{
		{"indep", dataset.Independent(150, 3, 2), 40, 3},
		{"anti", dataset.AntiCorrelated(120, 3, 3), 30, 3},
		{"zillow", dataset.Zillow(120, 4), 30, dataset.ZillowDim},
		{"ties", gridItems(rng, 100, 2, 3), 40, 2},
		{"objects-exhausted", dataset.Independent(15, 3, 5), 40, 3},
	} {
		fns := dataset.Functions(tc.nFn, tc.d, 6)
		want := oracle(tc.items, fns)
		tree := buildTree(t, tc.items, tc.d)
		got, err := Match(tree, fns, &Options{Algorithm: AlgBruteForceIncremental})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !pairSetEqual(got, want) {
			t.Fatalf("%s: incremental BF differs from oracle", tc.name)
		}
		// The incremental variant never touches the tree.
		if tree.Len() != len(tc.items) {
			t.Fatalf("%s: tree modified (%d items left)", tc.name, tree.Len())
		}
	}
}

func TestBFIncrementalWithCapacities(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	items := dataset.Independent(50, 3, 8)
	fns := dataset.Functions(70, 3, 9)
	caps := randomCapacities(rng, items, 3)
	want := capacitatedOracle(items, fns, caps)
	tree := buildTree(t, items, 3)
	got, err := Match(tree, fns, &Options{Algorithm: AlgBruteForceIncremental, Capacities: caps})
	if err != nil {
		t.Fatal(err)
	}
	if !pairSetEqual(got, want) {
		t.Fatal("capacitated incremental BF differs from oracle")
	}
}

// The whole point of the variant: it issues exactly |F| searches (one
// resumable search per function) and does far less I/O than classic Brute
// Force, while still doing more than SB.
func TestBFIncrementalCostProfile(t *testing.T) {
	items := dataset.Independent(10000, 3, 10)
	fns := dataset.Functions(300, 3, 11)
	run := func(alg Algorithm) *stats.Counters {
		c := &stats.Counters{}
		tree := buildTree(t, items, 3)
		tree.SetCounters(c)
		if _, err := Match(tree, fns, &Options{Algorithm: alg, Counters: c}); err != nil {
			t.Fatal(err)
		}
		return c
	}
	inc := run(AlgBruteForceIncremental)
	classic := run(AlgBruteForce)
	sb := run(AlgSB)
	t.Logf("io: sb=%d inc=%d classic=%d; searches: inc=%d classic=%d",
		sb.IOAccesses(), inc.IOAccesses(), classic.IOAccesses(), inc.Top1Searches, classic.Top1Searches)
	if inc.Top1Searches != int64(len(fns)) {
		t.Fatalf("incremental BF issued %d searches, want exactly %d", inc.Top1Searches, len(fns))
	}
	if inc.IOAccesses() >= classic.IOAccesses() {
		t.Fatalf("incremental BF should beat classic BF on I/O: %d vs %d", inc.IOAccesses(), classic.IOAccesses())
	}
	if sb.IOAccesses() >= inc.IOAccesses() {
		t.Fatalf("SB should still beat incremental BF on I/O: %d vs %d", sb.IOAccesses(), inc.IOAccesses())
	}
	if classic.TreeDeletes == 0 || inc.TreeDeletes != 0 {
		t.Fatalf("deletes: classic=%d inc=%d", classic.TreeDeletes, inc.TreeDeletes)
	}
}

func TestBFIncrementalProgressive(t *testing.T) {
	items := dataset.Independent(60, 2, 12)
	fns := dataset.Functions(20, 2, 13)
	tree := buildTree(t, items, 2)
	m, err := NewMatcher(tree, fns, &Options{Algorithm: AlgBruteForceIncremental})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		_, ok, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		count++
	}
	if count != 20 {
		t.Fatalf("count = %d", count)
	}
	if _, ok, _ := m.Next(); ok {
		t.Fatal("emission after completion")
	}
	if AlgBruteForceIncremental.String() != "BruteForceInc" {
		t.Fatal("algorithm name wrong")
	}
}
