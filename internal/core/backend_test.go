package core

import (
	"math/rand"
	"testing"

	"prefmatch/internal/dataset"
	"prefmatch/internal/index"
	"prefmatch/internal/index/mem"
	"prefmatch/internal/index/paged"
	"prefmatch/internal/stats"
)

var backendNames = []string{"paged", "mem"}

// buildBackend constructs the object index for the named backend with the
// same virtual page size the paged test helper uses, so both backends get
// identical fan-outs.
func buildBackend(t testing.TB, backend string, items []index.Item, d int) index.ObjectIndex {
	t.Helper()
	c := &stats.Counters{}
	var (
		ix  index.ObjectIndex
		err error
	)
	switch backend {
	case "mem":
		ix, err = mem.Build(d, items, &mem.Options{PageSize: 512, Counters: c})
	default:
		ix, err = paged.Build(d, items, &paged.Options{PageSize: 512, Counters: c})
	}
	if err != nil {
		t.Fatal(err)
	}
	c.Reset()
	return ix
}

func assertSamePairs(t *testing.T, label string, want, got []Pair) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d pairs vs %d", label, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: pair %d differs: %v vs %v", label, i, want[i], got[i])
		}
	}
}

// TestCrossBackendEquivalence is the randomized cross-backend property: on
// the same workload, every algorithm emits the identical assignment stream
// (same pairs, same order, same scores) whether the object index is the
// paged disk simulation or the in-memory serving backend — including runs
// with capacitated objects, and despite the two backends diverging
// structurally once the destructive algorithms start deleting.
func TestCrossBackendEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	algs := []Algorithm{AlgSB, AlgBruteForce, AlgBruteForceIncremental, AlgChain}
	for trial := 0; trial < 12; trial++ {
		d := 2 + rng.Intn(3)
		n := 40 + rng.Intn(160)
		nf := 10 + rng.Intn(80)
		var items []index.Item
		switch trial % 3 {
		case 0:
			items = gridItems(rng, n, d, 5) // dense ties
		case 1:
			items = dataset.Independent(n, d, int64(1000+trial))
		default:
			items = dataset.AntiCorrelated(n, d, int64(3000+trial))
		}
		fns := dataset.Functions(nf, d, int64(2000+trial))
		var caps map[index.ObjID]int
		if trial%2 == 1 {
			caps = randomCapacities(rng, items, 3)
		}
		for _, alg := range algs {
			results := make(map[string][]Pair, len(backendNames))
			for _, backend := range backendNames {
				ix := buildBackend(t, backend, items, d)
				pairs, err := Match(ix, fns, &Options{Algorithm: alg, Capacities: caps})
				if err != nil {
					t.Fatalf("trial %d %s/%s: %v", trial, alg, backend, err)
				}
				results[backend] = pairs
			}
			assertSamePairs(t,
				"trial "+alg.String(),
				results["paged"], results["mem"])
		}
	}
}

// TestGenericCrossBackendEquivalence covers the monotone-preference path on
// both backends.
func TestGenericCrossBackendEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	items := gridItems(rng, 120, 3, 6)
	fns := dataset.Functions(40, 3, 18)
	gps := make([]GenericPreference, len(fns))
	for i, f := range fns {
		gps[i] = GenericPreference{ID: f.ID, Pref: f}
	}
	for _, alg := range []Algorithm{AlgSB, AlgBruteForce} {
		var ref []Pair
		for _, backend := range backendNames {
			ix := buildBackend(t, backend, items, 3)
			pairs, err := MatchGeneric(ix, gps, &Options{Algorithm: alg})
			if err != nil {
				t.Fatalf("%s/%s: %v", alg, backend, err)
			}
			if ref == nil {
				ref = pairs
				continue
			}
			assertSamePairs(t, "generic "+alg.String(), ref, pairs)
		}
	}
}

// TestCounterRedirectRestored pins the NewMatcher contract: passing a
// private counter sink redirects the index's accounting for the run and
// restores the original sink once the matcher reports completion.
func TestCounterRedirectRestored(t *testing.T) {
	items := dataset.Independent(300, 3, 5)
	fns := dataset.Functions(40, 3, 6)
	for _, backend := range backendNames {
		for _, alg := range []Algorithm{AlgSB, AlgBruteForce, AlgChain} {
			ix := buildBackend(t, backend, items, 3)
			orig := ix.Counters()
			mine := &stats.Counters{}
			m, err := NewMatcher(ix, fns, &Options{Algorithm: alg, Counters: mine})
			if err != nil {
				t.Fatal(err)
			}
			if _, ok, err := m.Next(); err != nil || !ok {
				t.Fatalf("%s/%s: first Next: ok=%v err=%v", backend, alg, ok, err)
			}
			if ix.Counters() != mine {
				t.Fatalf("%s/%s: counters not redirected during the run", backend, alg)
			}
			if _, err := MatchAll(m); err != nil {
				t.Fatal(err)
			}
			if ix.Counters() != orig {
				t.Fatalf("%s/%s: counters not restored after completion", backend, alg)
			}
			before := *orig
			if _, ok, err := m.Next(); ok || err != nil {
				t.Fatalf("%s/%s: Next after completion: ok=%v err=%v", backend, alg, ok, err)
			}
			if *orig != before {
				t.Fatalf("%s/%s: original sink mutated after restore", backend, alg)
			}
		}
	}
}

// TestCounterNoRedirectWhenShared pins the other side of the contract: when
// the requested sink already is the index's sink, nothing is swapped.
func TestCounterNoRedirectWhenShared(t *testing.T) {
	items := dataset.Independent(100, 2, 7)
	fns := dataset.Functions(10, 2, 8)
	ix := buildBackend(t, "paged", items, 2)
	shared := ix.Counters()
	m, err := NewMatcher(ix, fns, &Options{Algorithm: AlgSB, Counters: shared})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MatchAll(m); err != nil {
		t.Fatal(err)
	}
	if ix.Counters() != shared {
		t.Fatal("shared sink was replaced")
	}
	if shared.ScoreEvals == 0 {
		t.Fatal("no work was attributed to the shared sink")
	}
}
