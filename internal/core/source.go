package core

import (
	"prefmatch/internal/index"
	"prefmatch/internal/prefs"
	"prefmatch/internal/stats"
	"prefmatch/internal/topk"
	"prefmatch/internal/vec"
)

// This file factors the object-index side of the candidate-driven matchers
// (Brute Force, Brute Force Incremental, Chain) behind ObjectSource: the
// matchers' global decision loops only ever ask "what is function f's best
// remaining object?" and "object o's capacity is exhausted, withdraw it".
// Everything else — restarted top-1 searches on a mutated tree, resumable
// incremental streams over a frozen one, or per-shard streams merged across
// a sharded composite — is a source strategy. Capacities stay out of the
// sources on purpose: the residual bookkeeping lives in the merge-level
// loop, so a shard-local source never needs cross-shard state.

// Candidate is one mergeable candidate pair: a function's best remaining
// object together with everything the global pair order needs (score,
// coordinate sum, ID).
type Candidate struct {
	ObjID index.ObjID
	Point vec.Point
	Sum   float64
	Score float64
}

// ObjectSource is the remaining-object view consumed by the candidate-driven
// matchers. Best must return function fnIdx's best remaining object under
// the canonical ranked order (topk.Better: score desc, then coordinate sum
// desc, then object ID asc), ok == false when no object remains; Remove
// withdraws an object whose capacity the merge loop has exhausted; Len
// counts the remaining objects. Implementations are free to answer Best by
// restarted search, resumable streams, or a merge of per-shard streams — the
// matchers only depend on the returned values, which is what makes every
// strategy emit the identical assignment stream.
type ObjectSource interface {
	Dim() int
	Len() int
	Best(fnIdx int) (Candidate, bool, error)
	Remove(id index.ObjID, p vec.Point) error
}

// BatchPrimer is optionally implemented by an ObjectSource that can refresh
// several functions' candidates more efficiently than one Best at a time
// (the sharded fan-out primes them across a shard-worker pool). After a
// successful Prime, Best(fnIdx) for every primed index must be answerable
// without further index work. Sources that do not implement it are simply
// asked one function at a time.
type BatchPrimer interface {
	Prime(fnIdxs []int) error
}

// restartSource is the § III-A access pattern: every Best issues a fresh
// branch-and-bound top-1 search, and Remove physically deletes the object
// from the tree — exactly the work profile the paper charges to classic
// Brute Force (and to Chain's object side). Prime batches a refresh wave's
// top-1 searches into one shared traversal (topk.BatchSearcher); the cache it
// fills is invalidated wholesale by the next deletion, so a stale answer can
// never survive a tree mutation.
type restartSource struct {
	tree index.ObjectIndex
	fns  []prefs.Function
	c    *stats.Counters

	epoch      int   // bumped by Remove; invalidates every primed answer
	primeEpoch []int // epoch at which fn i was primed (valid iff == epoch)
	primeHas   []bool
	primeCand  []Candidate

	// Prime scratch, reused across refresh waves.
	primeFns []prefs.Preference
	primeKs  []int
	rbuf     []topk.Result
}

func newRestartSource(tree index.ObjectIndex, fns []prefs.Function, c *stats.Counters) *restartSource {
	return &restartSource{
		tree:       tree,
		fns:        fns,
		c:          c,
		epoch:      1,
		primeEpoch: make([]int, len(fns)),
		primeHas:   make([]bool, len(fns)),
		primeCand:  make([]Candidate, len(fns)),
	}
}

func (s *restartSource) Dim() int { return s.tree.Dim() }
func (s *restartSource) Len() int { return s.tree.Len() }

func (s *restartSource) Best(fnIdx int) (Candidate, bool, error) {
	if s.primeEpoch[fnIdx] == s.epoch {
		return s.primeCand[fnIdx], s.primeHas[fnIdx], nil
	}
	res, ok, err := topk.Top1(s.tree, s.fns[fnIdx], s.c)
	if err != nil || !ok {
		return Candidate{}, false, err
	}
	return Candidate{ObjID: res.ID, Point: res.Point, Sum: res.Point.Sum(), Score: res.Score}, true, nil
}

// Prime answers a whole refresh wave's top-1 searches with one shared
// traversal. Each primed answer is bit-identical to the restarted search
// Best would have issued (the batched searcher's guarantee), so the matcher
// sees the exact same candidate stream, just with the tree's upper levels
// read once instead of once per function.
func (s *restartSource) Prime(fnIdxs []int) error {
	if len(fnIdxs) < 2 {
		return nil
	}
	s.primeFns = s.primeFns[:0]
	s.primeKs = s.primeKs[:0]
	for _, i := range fnIdxs {
		s.primeFns = append(s.primeFns, s.fns[i])
		s.primeKs = append(s.primeKs, 1)
	}
	b := topk.AcquireBatchSearcher(s.tree, s.primeFns, s.primeKs, s.c)
	defer b.Release()
	if err := b.Run(); err != nil {
		return err
	}
	for pos, i := range fnIdxs {
		s.rbuf = b.AppendResults(pos, s.rbuf[:0])
		s.primeEpoch[i] = s.epoch
		if len(s.rbuf) == 0 {
			s.primeHas[i] = false
			s.primeCand[i] = Candidate{}
			continue
		}
		r := s.rbuf[0]
		s.primeHas[i] = true
		s.primeCand[i] = Candidate{ObjID: r.ID, Point: r.Point, Sum: r.Point.Sum(), Score: r.Score}
	}
	return nil
}

func (s *restartSource) Remove(id index.ObjID, p vec.Point) error {
	s.epoch++ // the tree is about to change; every primed answer is stale
	return s.tree.Delete(id, p)
}

// incSource is the incremental strategy: every function keeps a resumable
// ranked stream over the unmodified tree, Remove is logical (a removed set
// the streams skip), and each object of each function's ranking is produced
// at most once. No tree deletions, no restarted searches.
type incSource struct {
	tree     index.ObjectIndex
	fns      []prefs.Function
	c        *stats.Counters
	searches []*topk.Searcher
	cand     []Candidate // current head per function (valid while has[i])
	has      []bool
	removed  map[index.ObjID]bool
	gone     int // objects logically removed
}

func newIncSource(tree index.ObjectIndex, fns []prefs.Function, c *stats.Counters) *incSource {
	return &incSource{
		tree:     tree,
		fns:      fns,
		c:        c,
		searches: make([]*topk.Searcher, len(fns)),
		cand:     make([]Candidate, len(fns)),
		has:      make([]bool, len(fns)),
		removed:  map[index.ObjID]bool{},
	}
}

func (s *incSource) Dim() int { return s.tree.Dim() }
func (s *incSource) Len() int { return s.tree.Len() - s.gone }

func (s *incSource) Best(fnIdx int) (Candidate, bool, error) {
	if s.has[fnIdx] && !s.removed[s.cand[fnIdx].ObjID] {
		// The cached head is still live — whether a stream produced it or a
		// batched Prime did; neither needs to advance.
		return s.cand[fnIdx], true, nil
	}
	if s.searches[fnIdx] == nil {
		srch := topk.NewSearcher()
		srch.Reset(s.tree, s.fns[fnIdx], s.c)
		s.searches[fnIdx] = srch
	}
	for {
		res, ok, err := s.searches[fnIdx].Next()
		if err != nil {
			return Candidate{}, false, err
		}
		if !ok {
			s.has[fnIdx] = false
			return Candidate{}, false, nil
		}
		if s.removed[res.ID] {
			continue
		}
		s.cand[fnIdx] = Candidate{ObjID: res.ID, Point: res.Point, Sum: res.Point.Sum(), Score: res.Score}
		s.has[fnIdx] = true
		return s.cand[fnIdx], true, nil
	}
}

// incSource deliberately does NOT implement BatchPrimer. Its defining
// contract — exactly one resumable search per function, every ranked object
// produced at most once — is what keeps its I/O strictly below classic Brute
// Force, and a batched re-prime would re-descend the tree for every refresh
// wave, re-reading upper levels the live streams have already paid for.
// Shared-traversal priming pays off only where the per-function work is
// stateless anyway (restartSource) or fanned across shards (sharded source).

func (s *incSource) Remove(id index.ObjID, p vec.Point) error {
	s.removed[id] = true
	s.gone++
	return nil
}
