package core

import (
	"math/rand"
	"testing"

	"prefmatch/internal/dataset"
	"prefmatch/internal/index"
	"prefmatch/internal/prefs"
)

// genericCapacitatedOracle extends the generic greedy reference with
// per-object capacities.
func genericCapacitatedOracle(objs []index.Item, gps []GenericPreference, caps map[index.ObjID]int) []Pair {
	resid := make(map[index.ObjID]int, len(objs))
	total := 0
	for _, o := range objs {
		c, ok := caps[o.ID]
		if !ok {
			c = 1
		}
		resid[o.ID] = c
		total += c
	}
	aliveF := make([]bool, len(gps))
	for i := range aliveF {
		aliveF[i] = true
	}
	n := min(total, len(gps))
	var out []Pair
	for len(out) < n {
		bf, bo := -1, -1
		var bk prefs.PairKey
		for fi := range gps {
			if !aliveF[fi] {
				continue
			}
			for oi := range objs {
				if resid[objs[oi].ID] == 0 {
					continue
				}
				k := prefs.PairKey{
					Score:  gps[fi].Pref.Score(objs[oi].Point),
					ObjSum: objs[oi].Point.Sum(),
					FuncID: gps[fi].ID,
					ObjID:  int(objs[oi].ID),
				}
				if bf == -1 || k.Better(bk) {
					bf, bo, bk = fi, oi, k
				}
			}
		}
		aliveF[bf] = false
		resid[objs[bo].ID]--
		out = append(out, Pair{FuncID: gps[bf].ID, ObjID: objs[bo].ID, Score: bk.Score})
	}
	return out
}

func TestGenericCapacitatedAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, tc := range []struct {
		name  string
		items []index.Item
		nPref int
		d     int
	}{
		{"indep", dataset.Independent(50, 3, 22), 60, 3},
		{"ties", gridItems(rng, 40, 2, 3), 55, 2},
	} {
		gps := mixedPreferences(rng, tc.nPref, tc.d)
		caps := randomCapacities(rng, tc.items, 3)
		want := genericCapacitatedOracle(tc.items, gps, caps)
		for _, alg := range []Algorithm{AlgSB, AlgBruteForce} {
			tree := buildTree(t, tc.items, tc.d)
			got, err := MatchGeneric(tree, gps, &Options{Algorithm: alg, Capacities: caps})
			if err != nil {
				t.Fatalf("%s/%v: %v", tc.name, alg, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s/%v: %d pairs, want %d", tc.name, alg, len(got), len(want))
			}
			if !pairSetEqual(got, want) {
				t.Fatalf("%s/%v: capacitated generic matching differs from oracle", tc.name, alg)
			}
		}
	}
}

func TestGenericCapacityValidation(t *testing.T) {
	items := dataset.Independent(10, 2, 23)
	tree := buildTree(t, items, 2)
	gps := mixedPreferences(rand.New(rand.NewSource(24)), 4, 2)
	if _, err := NewGenericMatcher(tree, gps, &Options{Capacities: map[index.ObjID]int{1: 0}}); err == nil {
		t.Fatal("capacity 0 accepted")
	}
}
