package core

import (
	"prefmatch/internal/index"
	"prefmatch/internal/skyline"
)

// loopScratch bundles the reusable per-loop state shared by the two SB
// matcher variants (linear sbMatcher and genericSB), which mirror each
// other's Algorithm-1 loop. The generation counter makes clearing the
// per-function marks O(1): a mark is set by writing the current generation
// and cleared for everyone by bumping it.
type loopScratch struct {
	gen        int64
	fbestGen   []int64 // generation marks: fnIdx ∈ Fbest this loop
	matchedGen []int64 // generation marks: fnIdx matched this loop
	fbest      []int   // Fbest in skyline discovery order
	pairs      []matchedPair
	removed    []index.ObjID
	removedQ   removedSet
}

func newLoopScratch(numFns int) loopScratch {
	return loopScratch{
		fbestGen:   make([]int64, numFns),
		matchedGen: make([]int64, numFns),
	}
}

// matchedPair is a mutually-best (function, object) pair collected in one
// SB loop (§ IV-C).
type matchedPair struct {
	fIdx  int
	obj   *skyline.Object
	score float64
}

// removedSet answers "was this object removed this loop" for the SB
// matchers' fcache refresh pass without allocating at steady state: the
// usual one-or-two-pair loop uses a linear scan, while a large multi-pair
// batch (up to the skyline size) switches to a reused map so the refresh
// pass stays O(functions + removed) instead of O(functions × removed).
type removedSet struct {
	ids    []index.ObjID
	m      map[index.ObjID]bool
	useMap bool
}

// reset points the set at this loop's removed objects. ids is borrowed, not
// copied; it must stay unchanged until the next reset.
func (r *removedSet) reset(ids []index.ObjID) {
	r.ids = ids
	r.useMap = len(ids) > 8
	if !r.useMap {
		return
	}
	if r.m == nil {
		r.m = make(map[index.ObjID]bool, len(ids))
	} else {
		clear(r.m)
	}
	for _, id := range ids {
		r.m[id] = true
	}
}

// has reports whether id was removed this loop.
func (r *removedSet) has(id index.ObjID) bool {
	if r.useMap {
		return r.m[id]
	}
	for _, v := range r.ids {
		if v == id {
			return true
		}
	}
	return false
}

// pairQueue is the FIFO of emitted-but-not-yet-returned pairs shared by the
// progressive SB matchers. Popping advances a head index instead of
// re-slicing the buffer — the old `queue = queue[1:]` pattern kept the
// original backing array reachable for the matcher's whole life, retaining
// every pair ever emitted. When the queue drains, the buffer is rewound and
// reused, so a long matching run settles on one small allocation.
type pairQueue struct {
	buf  []Pair
	head int
}

// push appends p to the tail of the queue.
func (q *pairQueue) push(p Pair) { q.buf = append(q.buf, p) }

// pop removes and returns the oldest pair; ok is false when the queue is
// empty. Draining the last element rewinds the buffer for reuse.
func (q *pairQueue) pop() (Pair, bool) {
	if q.head == len(q.buf) {
		return Pair{}, false
	}
	p := q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return p, true
}

// len returns the number of queued pairs.
func (q *pairQueue) len() int { return len(q.buf) - q.head }
