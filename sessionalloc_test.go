// Allocation gates for the session serving paths: a warm cache hit and a
// warm re-qualification must both serve without a single heap allocation —
// the whole point of the slot-scan cache, the swapped prev buffers and the
// insertion-sorted order scratch. Skipped under -race (the detector
// instruments allocations).
package prefmatch_test

import (
	"testing"

	"prefmatch"
)

// TestSessionCacheHitZeroAlloc pins the warm hit path: same weights, same
// k, same epoch, answer appended into a caller-recycled buffer.
func TestSessionCacheHitZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	const d, k = 3, 8
	objs := sessionObjects(3000, d, 97)
	srv, err := prefmatch.NewServer(objs, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := srv.OpenSession(prefmatch.Query{ID: 1, Weights: []float64{0.5, 0.3, 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]prefmatch.Assignment, 0, k)
	for i := 0; i < 3; i++ { // warm the session, the cache and the buffers
		if _, err := sess.TopKAppend(dst[:0], k); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		out, err := sess.TopKAppend(dst[:0], k)
		if err != nil || len(out) != k {
			t.Fatal("hit path broke mid-measurement")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm cache-hit TopKAppend allocates %v per op, want 0", allocs)
	}
}

// TestSessionRequalifyZeroAlloc pins the warm re-qualification path. The
// cache is disabled (negative ResultCacheEntries) so alternating weights
// exercise re-scoring + commit instead of becoming cache hits, and the
// nudges are tiny enough that the bound headroom survives the whole
// measurement on the separated dataset.
func TestSessionRequalifyZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	const d, k = 3, 8
	objs := sessionObjects(3000, d, 98)
	srv, err := prefmatch.NewServer(objs, &prefmatch.Options{ResultCacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := srv.OpenSession(prefmatch.Query{ID: 1, Weights: []float64{0.5, 0.3, 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	w1 := []float64{0.5, 0.3, 0.2}
	w2 := []float64{0.5002, 0.2998, 0.2}
	dst := make([]prefmatch.Assignment, 0, k)
	nodes0 := srv.Stats().NodesVisited
	step := func(w []float64) {
		if err := sess.Nudge(w); err != nil {
			t.Fatal(err)
		}
		out, err := sess.TopKAppend(dst[:0], k)
		if err != nil || len(out) != k {
			t.Fatal("requalify path broke mid-measurement")
		}
	}
	for i := 0; i < 4; i++ { // warm buffers and seed the incremental state
		step(w1)
		step(w2)
	}
	flip := false
	allocs := testing.AllocsPerRun(150, func() {
		flip = !flip
		if flip {
			step(w1)
		} else {
			step(w2)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm requalified Nudge+TopKAppend allocates %v per op, want 0", allocs)
	}
	// Sanity: the measurement really ran in the re-qualification regime —
	// tree work would show as nodes visited, and a mostly-requalified run
	// expands orders of magnitude fewer nodes than one walk per call.
	perOp := float64(srv.Stats().NodesVisited-nodes0) / (150 + 8 + 1)
	if perOp > 2 {
		t.Fatalf("measurement walked the tree (%.1f nodes/op): not the requalified path", perOp)
	}
}
