package prefmatch

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// adminState is a Server's running admin HTTP listener.
type adminState struct {
	ln  net.Listener
	srv *http.Server
}

// ServeAdmin starts the admin HTTP server on addr and returns the bound
// address (useful with ":0"). The endpoints:
//
//	/metrics      Prometheus text exposition of the full metric surface
//	/statsz       the same surface as JSON, plus the cumulative Stats blob
//	/healthz      the serving state machine: 200 "ok" when healthy,
//	              200 "degraded: <reason>" under load (gate saturated or
//	              shedding), 503 "draining" once Close has begun, 503
//	              "index unreadable" when the root page fails to resolve
//	/debug/pprof  the standard Go profiling handlers
//
// The admin server runs on its own goroutine and shares nothing with the
// serving hot path but the atomics the scrape reads. At most one admin
// server per Server; Close stops it. Usually wired via Options.AdminAddr
// rather than called directly.
func (s *Server) ServeAdmin(addr string) (string, error) {
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	if s.admin != nil {
		return "", fmt.Errorf("prefmatch: admin server already running on %s", s.admin.ln.Addr())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("prefmatch: admin listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.WriteMetrics(w)
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		writeStatsz(w, s)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		// The state machine: draining/closed means take me out of rotation
		// (503); a saturated gate or recent shedding means degraded — still
		// 200, it is load rather than brokenness, but the reason is named so
		// operators see it before it becomes shed traffic. Liveness itself
		// is "the index answers": the root must be resolvable. Everything
		// beyond that (staleness, skew) is a dashboard's call, from
		// /metrics — a health check must not flap on soft signals.
		if s.state.Load() != stateServing {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		if s.Len() > 0 {
			if _, err := s.ix.ReadNode(s.ix.RootPage()); err != nil {
				http.Error(w, "index unreadable: "+err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		if reason := s.degradedReason(); reason != "" {
			fmt.Fprintln(w, "degraded: "+reason)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	s.admin = &adminState{ln: ln, srv: srv}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

// writeStatsz renders /statsz: the cumulative Stats projection (the paper's
// vocabulary) next to the full metric surface (the serving vocabulary).
func writeStatsz(w http.ResponseWriter, s *Server) {
	stats := s.Stats()
	fmt.Fprintf(w, "{\"served\":%d,\"stats\":", s.Served())
	enc := json.NewEncoder(w)
	enc.Encode(stats)
	fmt.Fprint(w, ",\"metrics\":")
	s.WriteStatsJSON(w)
	fmt.Fprint(w, "}")
}

// AdminAddr returns the admin server's bound address, or "" when none is
// running.
func (s *Server) AdminAddr() string {
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	if s.admin == nil {
		return ""
	}
	return s.admin.ln.Addr().String()
}

// stopAdmin stops the admin HTTP server, if one is running. The last step
// of Close's lifecycle, so /healthz reports "draining" for the whole drain
// window; a no-op when no admin server was started.
func (s *Server) stopAdmin() error {
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	if s.admin == nil {
		return nil
	}
	err := s.admin.srv.Close()
	s.admin = nil
	return err
}
