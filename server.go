package prefmatch

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"prefmatch/internal/index"
	"prefmatch/internal/index/mem"
	"prefmatch/internal/stats"
)

// Server indexes a slow-changing object inventory once and serves many
// preference evaluations against it concurrently: full matching waves
// (Match, MatchMany), per-user top-k queries (TopK, TopKMany,
// TopKMonotone) and skyline computations.
//
// A Server always runs on the Memory backend — the only backend whose node
// reads are free of side effects — and hands every request a read-only
// snapshot of the index with its own work counters, so requests never
// synchronise with each other on the hot path. The only shared write is the
// merge of each request's counters into the server totals (Stats) after the
// request completes. All methods are safe for concurrent use.
//
// Matching waves are restricted to the skyline-based algorithm, which never
// mutates the object index; requesting BruteForce or Chain returns an
// error, as does deleting from a snapshot (index.ErrReadOnly) if an
// internal invariant ever let one through.
type Server struct {
	ix         *mem.Index
	capacities map[index.ObjID]int

	mu      sync.Mutex
	agg     stats.Counters
	elapsed time.Duration
	served  int64
}

// NewServer validates and indexes the objects for concurrent serving.
// Options may be nil. Only PageSize is honoured at build time (it sets the
// node fan-outs); the storage fields Backend, BufferFraction and
// BufferPages are ignored, because a Server is by definition the Memory
// backend. The algorithm-related fields are taken per Match call instead.
func NewServer(objects []Object, opts *Options) (*Server, error) {
	if opts == nil {
		opts = &Options{}
	}
	if len(objects) == 0 {
		return nil, errNoObjects
	}
	d, items, capacities, err := convertObjectSet(objects)
	if err != nil {
		return nil, err
	}
	ix, err := mem.Build(d, items, &mem.Options{PageSize: opts.PageSize})
	if err != nil {
		return nil, err
	}
	return &Server{ix: ix, capacities: capacities}, nil
}

// Len returns the number of indexed objects.
func (s *Server) Len() int { return s.ix.Len() }

// Dim returns the number of attributes per object.
func (s *Server) Dim() int { return s.ix.Dim() }

// record merges one completed request's accounting into the server totals.
func (s *Server) record(c *stats.Counters, elapsed time.Duration) {
	s.mu.Lock()
	s.agg.Add(c)
	s.elapsed += elapsed
	s.served++
	s.mu.Unlock()
}

// Stats returns the cumulative work of every request served so far, merged
// from the per-request counters. Elapsed is the sum of per-request wall
// clock, not the server's lifetime — with W workers it can exceed real time
// by up to a factor of W.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return statsFromCounters(&s.agg, s.elapsed)
}

// Served returns the number of requests completed so far.
func (s *Server) Served() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

// Match runs one skyline-based matching wave of queries against the shared
// index, exactly like Index.Match but safe to call concurrently: the wave
// runs against a read-only snapshot with private counters. opts may be nil;
// the Algorithm field must be SkylineBased (the zero value) and storage
// fields are ignored.
func (s *Server) Match(queries []Query, opts *Options) (*Result, error) {
	res, c, err := matchWave(s.ix.Snapshot(), s.capacities, queries, opts)
	if err != nil {
		return nil, err
	}
	s.record(c, res.Stats.Elapsed)
	return res, nil
}

// MatchMany evaluates independent matching waves across workers goroutines
// (0 or negative means GOMAXPROCS) and returns one Result per wave, in wave
// order. Each wave is a complete stable matching of its queries against the
// full object set, identical to what a sequential Match of that wave
// returns. If any wave fails, the joined errors are returned and the
// results are discarded.
func (s *Server) MatchMany(waves [][]Query, opts *Options, workers int) ([]*Result, error) {
	results := make([]*Result, len(waves))
	errs := make([]error, len(waves))
	fanOut(len(waves), workers, func(i int) {
		results[i], errs[i] = s.Match(waves[i], opts)
	})
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return results, nil
}

// serve runs one read-only request against a fresh snapshot of the index
// and, on success, merges the request's accounting into the server totals.
// The single place that implements the snapshot-per-request discipline.
func serve[T any](s *Server, req func(snap index.ObjectIndex, c *stats.Counters) (T, error)) (T, error) {
	snap := s.ix.Snapshot()
	var timer stats.Timer
	timer.Start()
	out, err := req(snap, snap.Counters())
	timer.Stop()
	if err != nil {
		var zero T
		return zero, err
	}
	s.record(snap.Counters(), timer.Elapsed())
	return out, nil
}

// TopK returns the k best objects for one linear query, best first, without
// rebuilding the index (compare the package-level TopK, which bulk-loads a
// throwaway index per call). Safe for concurrent use.
func (s *Server) TopK(query Query, k int) ([]Assignment, error) {
	if k < 0 {
		return nil, fmt.Errorf("prefmatch: negative k %d", k)
	}
	if k == 0 {
		return nil, nil
	}
	f, err := linearPref(query, s.ix.Dim())
	if err != nil {
		return nil, err
	}
	return serve(s, func(snap index.ObjectIndex, c *stats.Counters) ([]Assignment, error) {
		return topkOver(snap, query.ID, f, k, c)
	})
}

// TopKMonotone is TopK for an arbitrary monotone preference.
func (s *Server) TopKMonotone(query PreferenceQuery, k int) ([]Assignment, error) {
	if k < 0 {
		return nil, fmt.Errorf("prefmatch: negative k %d", k)
	}
	if query.Preference == nil {
		return nil, fmt.Errorf("prefmatch: preference query %d is nil", query.ID)
	}
	if k == 0 {
		return nil, nil
	}
	return serve(s, func(snap index.ObjectIndex, c *stats.Counters) ([]Assignment, error) {
		return topkOver(snap, query.ID, prefAdapter{p: query.Preference}, k, c)
	})
}

// TopKMany answers independent top-k queries across workers goroutines (0
// or negative means GOMAXPROCS), one result slice per query, in query
// order. The workload of the paper's serving framing: many users, one
// object set, every user wants their personal ranking.
func (s *Server) TopKMany(queries []Query, k, workers int) ([][]Assignment, error) {
	results := make([][]Assignment, len(queries))
	errs := make([]error, len(queries))
	fanOut(len(queries), workers, func(i int) {
		results[i], errs[i] = s.TopK(queries[i], k)
	})
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return results, nil
}

// Skyline returns the ascending IDs of the non-dominated objects, computed
// over a snapshot. Safe for concurrent use.
func (s *Server) Skyline() ([]int, error) {
	return serve(s, skylineOver)
}

// fanOut runs jobs 0..n-1 across workers goroutines (0 or negative means
// GOMAXPROCS), pulling indices from a shared atomic cursor so fast workers
// absorb slow jobs.
func fanOut(n, workers int, job func(int)) {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				job(i)
			}
		}()
	}
	wg.Wait()
}
