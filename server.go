package prefmatch

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"prefmatch/internal/cancel"
	"prefmatch/internal/guard"
	"prefmatch/internal/index"
	"prefmatch/internal/index/sharded"
	"prefmatch/internal/prefs"
	"prefmatch/internal/rescache"
	"prefmatch/internal/stats"
	"prefmatch/internal/topk"
	"prefmatch/internal/vec"
)

// Server indexes a slow-changing object inventory once and serves many
// preference evaluations against it concurrently: full matching waves
// (Match, MatchMany), per-user top-k queries (TopK, TopKMany,
// TopKMonotone) and skyline computations.
//
// A Server runs on the Memory backend family — the only backends whose
// node reads are free of side effects — and hands every request a
// read-only snapshot of the index with its own work counters, so requests
// never synchronise with each other on the hot path. The only shared write
// is the merge of each request's counters into the server totals (Stats)
// after the request completes. All methods are safe for concurrent use.
//
// With Options.Backend set to Dynamic, the inventory is no longer
// slow-changing: Insert, Update and Remove mutate the live index while
// requests keep serving. Each write lands in a delta R-tree write tier and
// publishes a new epoch; each request re-pins the latest epoch when it
// starts and reads it consistently to completion, while a background merge
// (Options.MergeThreshold, Options.MergeInterval, or manual Compact)
// re-packs the write tier into a fresh base arena. Reads stay
// allocation-free throughout. On every other backend the write methods
// return an error wrapping index.ErrReadOnly.
//
// With Options.Shards set, the server runs on the sharded composite over
// memory (or dynamic) shards: skyline requests traverse a composite
// snapshot, top-k requests fan ranked search across per-shard snapshot
// workers and merge, and matching waves run shard-parallel through
// sharded.MatchWave — the SB loop at the merge point, per-shard skylines
// computed and maintained concurrently — with results bit-identical to the
// single-index wave. Shards whose bounding box cannot contribute are
// skipped (Stats.ShardsPruned counts them). Over dynamic shards, writes are
// routed by the partitioner and each shard rotates epochs independently.
//
// Matching waves are restricted to the skyline-based algorithm, which never
// mutates the object index; requesting BruteForce or Chain returns an
// error, as does deleting from a snapshot (index.ErrReadOnly) if an
// internal invariant ever let one through.
type Server struct {
	ix      servingIndex
	sh      *sharded.Index // non-nil for a sharded index: enables the per-shard ranked fan-out
	scratch sync.Pool      // *serveScratch: pooled per-request plumbing

	// capacities is the capacity map in effect for new requests, replaced
	// copy-on-write by the write path (Insert/Update/Remove) so in-flight
	// requests keep the map they started with and never race the writer.
	capacities atomic.Pointer[map[index.ObjID]int]
	wmu        sync.Mutex // serialises Insert/Update/Remove/Compact

	mu      sync.Mutex
	agg     stats.Counters
	elapsed time.Duration
	served  int64

	// om is the server's observability surface: per-op latency histograms,
	// stage histograms, slow-query log. Always non-nil; every recording
	// method is allocation-free.
	om *serverMetrics

	// Lifecycle and admission state (see lifecycle.go). state advances
	// serving → draining → closed; inflight counts admitted requests;
	// gate is the MaxInFlight semaphore (nil means unlimited); closing is
	// closed when Close begins, unblocking waiters queued on the gate.
	state      atomic.Int32
	inflight   atomic.Int64
	gate       chan struct{}
	maxWait    time.Duration
	drainBound time.Duration
	closing    chan struct{}
	closeOnce  sync.Once
	closeErr   error

	// Preference-session state: the epoch-keyed result cache shared by all
	// sessions (nil when Options.ResultCacheEntries is negative) and the
	// registry of open sessions, so Close can mark them closed during the
	// drain (see OpenSession, lifecycle.go).
	rc       *rescache.Cache
	sessMu   sync.Mutex
	sessions map[*Session]struct{}

	adminMu sync.Mutex
	admin   *adminState
}

// caps returns the capacity map in effect for a request starting now (nil
// when every object has the default capacity 1).
func (s *Server) caps() map[index.ObjID]int {
	if m := s.capacities.Load(); m != nil {
		return *m
	}
	return nil
}

// serveScratch is the per-request plumbing a read-only request needs — a
// snapshot wired to a private counter sink, plus the batched path's reusable
// buffers — pooled so a steady-state request allocates nothing. Reusing a
// snapshot across requests is sound on every serving backend, each by its
// own mutation story: mem views stay valid forever under the freeze
// contract (the index never mutates while the server is in use), while
// dynamic and sharded-over-dynamic views pin an epoch — refresh (reset on
// acquire, allocation-free) re-pins the latest one, and the request then
// reads that epoch consistently no matter how the writers and background
// merges rotate underneath it.
type serveScratch struct {
	snap    index.ObjectIndex
	refresh func() // re-pins the latest epoch; nil on non-rotating backends
	c       stats.Counters
	arena   vec.Point          // normalised query weights, appended per batch
	fnvals  []prefs.Function   // batch functions, weights aliasing arena
	fns     []prefs.Preference // *Function views of fnvals (pointer boxing is allocation-free)
	ks      []int
	rbuf    []topk.Result
}

func (s *Server) acquireScratch() *serveScratch {
	sc := s.scratch.Get().(*serveScratch)
	sc.c = stats.Counters{}
	if sc.refresh != nil {
		sc.refresh()
	}
	return sc
}

func (s *Server) releaseScratch(sc *serveScratch) {
	sc.arena = sc.arena[:0]
	sc.fnvals = sc.fnvals[:0]
	sc.fns = sc.fns[:0]
	s.scratch.Put(sc)
}

// servingIndex is what a Server needs from its backend: the traversal
// surface plus concurrent read-only snapshots.
type servingIndex interface {
	index.ObjectIndex
	index.Snapshotter
}

// asServing checks that ix can hand out concurrent read-only views,
// returning a descriptive error — never a silent fallback — when it cannot.
func asServing(ix index.ObjectIndex) (servingIndex, error) {
	type snapProbe interface{ CanSnapshot() bool }
	if p, ok := ix.(snapProbe); ok && !p.CanSnapshot() {
		return nil, fmt.Errorf("prefmatch: %T cannot serve concurrently: its shards do not implement index.Snapshotter (paged shards mutate their LRU buffer on every read; build the shards on the Memory backend)", ix)
	}
	s, ok := ix.(servingIndex)
	if !ok {
		return nil, fmt.Errorf("prefmatch: %T cannot serve concurrently: it does not implement index.Snapshotter (the paged backend mutates its LRU buffer on every read; build on the Memory backend)", ix)
	}
	return s, nil
}

// NewServer validates and indexes the objects for concurrent serving.
// Options may be nil. PageSize sets the node fan-outs and Shards/ShardBy
// select the sharded composite; Backend Dynamic (with its
// MergeThreshold/MergeInterval knobs) builds a live-mutable server, any
// other Backend is coerced to Memory, because a Server needs side-effect-free
// reads (the paged LRU buffer disqualifies itself). BufferFraction and
// BufferPages are ignored. The algorithm-related fields are taken per Match
// call instead.
func NewServer(objects []Object, opts *Options) (*Server, error) {
	if opts == nil {
		opts = &Options{}
	}
	if len(objects) == 0 {
		return nil, errNoObjects
	}
	d, items, capacities, err := convertObjectSet(objects)
	if err != nil {
		return nil, err
	}
	sopts := *opts
	if sopts.Backend != Dynamic {
		sopts.Backend = Memory
	}
	ix, _, err := buildIndex(items, d, &sopts)
	if err != nil {
		return nil, err
	}
	return newServer(ix, capacities, &sopts)
}

// NewServerFromIndex serves over an already-built reusable Index, sharing
// its storage instead of re-indexing the objects. The index must be able to
// hand out read-only snapshots — it must have been built on the Memory
// backend (sharded or not); a paged-built index returns a descriptive
// error. The caller must not mutate or rebuild the index while the server
// is in use (the Snapshotter freeze contract).
func NewServerFromIndex(ix *Index) (*Server, error) {
	return newServer(ix.ix, ix.capacities, nil)
}

func newServer(ix index.ObjectIndex, capacities map[index.ObjID]int, opts *Options) (*Server, error) {
	serving, err := asServing(ix)
	if err != nil {
		return nil, err
	}
	s := &Server{ix: serving, closing: make(chan struct{}), sessions: map[*Session]struct{}{}}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts == nil || opts.ResultCacheEntries >= 0 {
		entries := 0
		if opts != nil {
			entries = opts.ResultCacheEntries
		}
		s.rc = rescache.New(entries)
	}
	if opts != nil {
		if opts.MaxInFlight > 0 {
			s.gate = make(chan struct{}, opts.MaxInFlight)
		}
		s.maxWait = opts.MaxQueueWait
		s.drainBound = opts.DrainTimeout
	}
	if capacities != nil {
		s.capacities.Store(&capacities)
	}
	if sh, ok := ix.(*sharded.Index); ok {
		s.sh = sh
	}
	s.scratch.New = func() any {
		sc := &serveScratch{snap: s.ix.Snapshot()}
		if r, ok := sc.snap.(interface{ Refresh() }); ok {
			sc.refresh = r.Refresh
		}
		sc.snap.SetCounters(&sc.c)
		return sc
	}
	s.om = newServerMetrics(s, opts)
	if opts != nil && opts.AdminAddr != "" {
		if _, err := s.ServeAdmin(opts.AdminAddr); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// mutable returns the serving index's write surface, or an error wrapping
// index.ErrReadOnly when the server was built on a static backend.
func (s *Server) mutable() (index.MutableIndex, error) {
	err := index.ReadOnlyError("this server's static backend (build the server with Options{Backend: Dynamic} for live writes)")
	m, ok := s.ix.(index.MutableIndex)
	if !ok {
		return nil, err
	}
	if p, ok := s.ix.(interface{ CanMutate() bool }); ok && !p.CanMutate() {
		return nil, err
	}
	return m, nil
}

// validateObject is the write-path counterpart of convertObjects' per-object
// checks, returning the converted ID and a cloned point.
func (s *Server) validateObject(obj Object) (index.ObjID, vec.Point, error) {
	if len(obj.Values) != s.ix.Dim() {
		return 0, nil, fmt.Errorf("prefmatch: object %d has %d attributes, want %d", obj.ID, len(obj.Values), s.ix.Dim())
	}
	if obj.ID < 0 || int64(obj.ID) > 1<<31-1 {
		return 0, nil, fmt.Errorf("prefmatch: object ID %d out of range", obj.ID)
	}
	if obj.Capacity < 0 {
		return 0, nil, fmt.Errorf("prefmatch: object %d has negative capacity %d", obj.ID, obj.Capacity)
	}
	return index.ObjID(obj.ID), vec.Point(obj.Values).Clone(), nil
}

// setCapacityLocked records obj's capacity (0 and 1 both mean the default
// single unit) by replacing the capacity map copy-on-write, so requests
// that already hold the old map are unaffected. Callers hold wmu.
func (s *Server) setCapacityLocked(id index.ObjID, capacity int) {
	cur := s.caps()
	_, present := cur[id]
	if capacity <= 1 && !present {
		return
	}
	next := make(map[index.ObjID]int, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	if capacity > 1 {
		next[id] = capacity
	} else {
		delete(next, id)
	}
	s.capacities.Store(&next)
}

// Insert adds one object to the live index while serving continues: the
// write lands in the backend's delta tier and publishes a new epoch, so
// in-flight requests keep the epoch they pinned and new requests see the
// object. Requires the Dynamic backend (sharded or not); static servers
// return an error wrapping index.ErrReadOnly. Safe for concurrent use with
// all read methods and other writes. Writes pass the same admission gate
// as reads (ErrOverloaded, ErrClosed apply).
func (s *Server) Insert(obj Object) error {
	return s.insert(cancel.Token{}, obj)
}

func (s *Server) insert(tok cancel.Token, obj Object) (err error) {
	if err := s.admit(tok); err != nil {
		return err
	}
	defer s.exitRequest()
	defer s.finishReq(opInsert, obj.ID, &err)
	start := time.Now()
	m, err := s.mutable()
	if err != nil {
		s.om.fail(opInsert)
		return err
	}
	id, pt, err := s.validateObject(obj)
	if err != nil {
		s.om.fail(opInsert)
		return err
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if err := tok.Check("write.apply"); err != nil {
		return err
	}
	if err := m.Insert(id, pt); err != nil {
		s.om.fail(opInsert)
		return err
	}
	s.setCapacityLocked(id, obj.Capacity)
	s.om.observeOp(opInsert, time.Since(start))
	return nil
}

// Update moves an already-indexed object to new attribute values (and
// capacity) as one atomic step: no request observes the object absent.
// Returns index.ErrNotFound when the object is not indexed. Requires the
// Dynamic backend, like Insert.
func (s *Server) Update(obj Object) error {
	return s.update(cancel.Token{}, obj)
}

func (s *Server) update(tok cancel.Token, obj Object) (err error) {
	if err := s.admit(tok); err != nil {
		return err
	}
	defer s.exitRequest()
	defer s.finishReq(opUpdate, obj.ID, &err)
	start := time.Now()
	m, err := s.mutable()
	if err != nil {
		s.om.fail(opUpdate)
		return err
	}
	id, pt, err := s.validateObject(obj)
	if err != nil {
		s.om.fail(opUpdate)
		return err
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if err := tok.Check("write.apply"); err != nil {
		return err
	}
	if err := m.Update(id, pt); err != nil {
		s.om.fail(opUpdate)
		return err
	}
	s.setCapacityLocked(id, obj.Capacity)
	s.om.observeOp(opUpdate, time.Since(start))
	return nil
}

// Remove deletes one object from the live index by ID. Returns
// index.ErrNotFound when the object is not indexed. Requires the Dynamic
// backend, like Insert.
func (s *Server) Remove(id int) error {
	return s.remove(cancel.Token{}, id)
}

func (s *Server) remove(tok cancel.Token, id int) (err error) {
	if err := s.admit(tok); err != nil {
		return err
	}
	defer s.exitRequest()
	defer s.finishReq(opRemove, id, &err)
	start := time.Now()
	m, err := s.mutable()
	if err != nil {
		s.om.fail(opRemove)
		return err
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if err := tok.Check("write.apply"); err != nil {
		return err
	}
	p, ok := s.ix.(interface {
		PointOf(index.ObjID) (vec.Point, bool)
	})
	if !ok {
		s.om.fail(opRemove)
		return fmt.Errorf("prefmatch: %T accepts writes but cannot resolve objects by ID", s.ix)
	}
	pt, found := p.PointOf(index.ObjID(id))
	if !found {
		s.om.fail(opRemove)
		return index.ErrNotFound
	}
	if err := m.Delete(index.ObjID(id), pt); err != nil {
		s.om.fail(opRemove)
		return err
	}
	s.setCapacityLocked(index.ObjID(id), 0)
	s.om.observeOp(opRemove, time.Since(start))
	return nil
}

// Compact forces a synchronous write-tier merge: the delta and tombstones
// are re-packed into a fresh base arena and published as a new epoch (per
// shard, on a sharded server). The third merge-policy lever next to
// Options.MergeThreshold and Options.MergeInterval — call it before a read
// burst or after bulk writes. Requires the Dynamic backend, like Insert.
func (s *Server) Compact() error {
	return s.compact(cancel.Token{})
}

func (s *Server) compact(tok cancel.Token) (err error) {
	if err := s.admit(tok); err != nil {
		return err
	}
	defer s.exitRequest()
	defer s.finishReq(opCompact, -1, &err)
	start := time.Now()
	if _, err := s.mutable(); err != nil {
		s.om.fail(opCompact)
		return err
	}
	c, ok := s.ix.(interface{ Compact() })
	if !ok {
		s.om.fail(opCompact)
		return fmt.Errorf("prefmatch: %T accepts writes but has no write tier to compact", s.ix)
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if err := tok.Check("write.apply"); err != nil {
		return err
	}
	c.Compact()
	s.om.observeOp(opCompact, time.Since(start))
	return nil
}

// Len returns the number of indexed objects.
func (s *Server) Len() int { return s.ix.Len() }

// Dim returns the number of attributes per object.
func (s *Server) Dim() int { return s.ix.Dim() }

// record merges one completed request's accounting into the server totals.
func (s *Server) record(c *stats.Counters, elapsed time.Duration) {
	s.recordN(c, elapsed, 1)
}

// recordN is record for a batched request answering n logical queries at
// once: Served still advances by n, so batching changes how the work is
// done, not how much serving the totals report.
func (s *Server) recordN(c *stats.Counters, elapsed time.Duration, n int) {
	s.mu.Lock()
	s.agg.Add(c)
	s.elapsed += elapsed
	s.served += int64(n)
	s.mu.Unlock()
}

// Stats returns the cumulative work of every request served so far, merged
// from the per-request counters. Elapsed is the sum of per-request wall
// clock, not the server's lifetime — with W workers it can exceed real time
// by up to a factor of W. On the Dynamic backend the Epoch, DeltaSize and
// MergesCompleted gauges report the live index's state as of this call.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	out := statsFromCounters(&s.agg, s.elapsed)
	s.mu.Unlock()
	if e, ok := s.ix.(interface{ Epoch() uint64 }); ok {
		out.Epoch = e.Epoch()
	}
	if d, ok := s.ix.(interface{ DeltaSize() int }); ok {
		out.DeltaSize = int64(d.DeltaSize())
	}
	if m, ok := s.ix.(interface{ MergesCompleted() int64 }); ok {
		out.MergesCompleted = m.MergesCompleted()
	}
	out.Shed = s.om.shed.Load()
	out.Canceled = s.om.canceled.Load()
	out.Panics = s.om.panics.Load()
	return out
}

// firstQID picks the representative query ID a batch request is logged
// under when it panics: the first query's ID, or -1 for an empty batch.
func firstQID(queries []Query) int {
	if len(queries) == 0 {
		return -1
	}
	return queries[0].ID
}

// Served returns the number of requests completed so far.
func (s *Server) Served() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

// Match runs one skyline-based matching wave of queries against the shared
// index, exactly like Index.Match but safe to call concurrently: the wave
// runs against read-only snapshots with private counters. On a sharded
// server the wave fans across all CPUs' worth of per-shard workers
// (sharded.MatchWave); the result is bit-identical to the unsharded wave.
// opts may be nil; the Algorithm field must be SkylineBased (the zero
// value) and storage fields are ignored.
func (s *Server) Match(queries []Query, opts *Options) (*Result, error) {
	return s.matchReq(cancel.Token{}, queries, opts)
}

// matchReq is Match behind the admission gate, with the request's
// cancellation token threaded into the wave loop.
func (s *Server) matchReq(tok cancel.Token, queries []Query, opts *Options) (_ *Result, err error) {
	if err := s.admit(tok); err != nil {
		return nil, err
	}
	defer s.exitRequest()
	defer s.finishReq(opMatch, firstQID(queries), &err)
	return s.match(tok, queries, opts, 0)
}

// match implements Match with an explicit shard-worker budget: 0 lets a
// lone request fan across GOMAXPROCS shard workers, while MatchMany passes
// its budget split so the outer per-wave fan-out and the inner per-shard
// fan-out never multiply into oversubscription (the TopKMany discipline).
// The caller has already passed the admission gate.
func (s *Server) match(tok cancel.Token, queries []Query, opts *Options, shardWorkers int) (*Result, error) {
	if s.sh != nil {
		return s.matchSharded(tok, queries, opts, shardWorkers)
	}
	var tr reqTrace
	tr.begin(0)
	snap := s.ix.Snapshot()
	tr.mark(stagePin)
	res, c, err := matchWave(snap, s.caps(), queries, opts, tok)
	tr.mark(stageTraverse)
	if err != nil {
		s.om.fail(opMatch)
		return nil, err
	}
	s.record(c, res.Stats.Elapsed)
	tr.mark(stageMerge)
	s.om.finish(opMatch, &tr, c, 1)
	return res, nil
}

// matchSharded answers one matching wave on a sharded server by fanning the
// engine across per-shard snapshots (sharded.MatchWave) with the given
// shard-worker budget. The wave's merged accounting is recorded into the
// server totals exactly like any other request.
func (s *Server) matchSharded(tok cancel.Token, queries []Query, opts *Options, shardWorkers int) (*Result, error) {
	vstart := time.Now()
	fns, copts, err := waveInputs(s.ix.Dim(), queries, opts)
	if err != nil {
		s.om.fail(opMatch)
		return nil, err
	}
	var tr reqTrace
	tr.begin(time.Since(vstart))
	copts.Capacities = s.caps()
	copts.Cancel = tok
	c := &stats.Counters{}
	pairs, err := s.sh.MatchWave(fns, copts, shardWorkers, c)
	tr.mark(stageTraverse)
	if err != nil {
		s.om.fail(opMatch)
		return nil, err
	}
	res := &Result{Assignments: assignmentsFromPairs(pairs)}
	res.Stats = statsFromCounters(c, tr.stages[stageTraverse])
	s.record(c, tr.stages[stageTraverse])
	tr.mark(stageMerge)
	s.om.finish(opMatch, &tr, c, 1)
	return res, nil
}

// MatchMany evaluates independent matching waves across workers goroutines
// (0 or negative means GOMAXPROCS) and returns one Result per wave, in wave
// order. Each wave is a complete stable matching of its queries against the
// full object set, identical to what a sequential Match of that wave
// returns. If any wave fails, the joined errors are returned and the
// results are discarded.
//
// On a sharded server, workers is the total parallelism budget: it is
// spent on the per-wave fan-out first, and whatever the wave count leaves
// unused goes to each wave's per-shard fan-out (a one-wave batch with
// workers=0 fans across all CPUs' worth of shard workers; workers=1 stays
// fully sequential).
func (s *Server) MatchMany(waves [][]Query, opts *Options, workers int) ([]*Result, error) {
	return s.matchMany(cancel.Token{}, waves, opts, workers)
}

func (s *Server) matchMany(tok cancel.Token, waves [][]Query, opts *Options, workers int) (_ []*Result, err error) {
	if err := s.admit(tok); err != nil {
		return nil, err
	}
	defer s.exitRequest()
	defer s.finishReq(opMatch, -1, &err)
	results := make([]*Result, len(waves))
	errs := make([]error, len(waves))
	budget := workers
	if budget < 1 {
		budget = runtime.GOMAXPROCS(0)
	}
	shardWorkers := 1
	if s.sh != nil {
		if outer := clampWorkers(budget, len(waves)); outer > 0 && budget/outer > 1 {
			shardWorkers = budget / outer
		}
	}
	fanOut(len(waves), budget, func(i int) {
		errs[i] = guard.Safe(func() error {
			var e error
			results[i], e = s.match(tok, waves[i], opts, shardWorkers)
			return e
		})
	})
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return results, nil
}

// serve runs one read-only request against a pooled snapshot of the index
// and, on success, merges the request's accounting into the server totals.
// The single place that implements the snapshot-per-request discipline:
// each pool entry owns one snapshot wired to its own counter sink, so
// concurrent requests never share a sink and a steady-state request
// allocates no plumbing. The caller times its own validation (it runs
// before any shared plumbing exists) and passes the duration in; serve
// traces the remaining stages — scratch/epoch pin, traversal, counter
// merge — and feeds the op's latency histogram and the slow-query log.
// The recorded Stats.Elapsed stays the traversal time alone, exactly as
// before tracing existed.
func serve[T any](s *Server, op serverOp, validate time.Duration, req func(snap index.ObjectIndex, c *stats.Counters) (T, error)) (T, error) {
	var tr reqTrace
	tr.begin(validate)
	sc := s.acquireScratch()
	tr.mark(stagePin)
	out, err := req(sc.snap, &sc.c)
	tr.mark(stageTraverse)
	if err != nil {
		s.releaseScratch(sc)
		s.om.fail(op)
		var zero T
		return zero, err
	}
	s.record(&sc.c, tr.stages[stageTraverse])
	tr.mark(stageMerge)
	s.om.finish(op, &tr, &sc.c, 1)
	s.releaseScratch(sc)
	return out, nil
}

// TopK returns the k best objects for one linear query, best first, without
// rebuilding the index (compare the package-level TopK, which bulk-loads a
// throwaway index per call). On a sharded server the request fans out
// across all CPUs' worth of per-shard snapshot workers. Safe for concurrent
// use.
func (s *Server) TopK(query Query, k int) ([]Assignment, error) {
	return s.topKReq(cancel.Token{}, query, k)
}

// topKReq is TopK behind the admission gate.
func (s *Server) topKReq(tok cancel.Token, query Query, k int) (_ []Assignment, err error) {
	if err := s.admit(tok); err != nil {
		return nil, err
	}
	defer s.exitRequest()
	defer s.finishReq(opTopK, query.ID, &err)
	return s.topK(tok, query, k, 0)
}

// topK implements TopK with an explicit shard-worker budget: 0 lets a lone
// request fan out across GOMAXPROCS shard workers, while TopKMany passes 1
// so the outer per-query fan-out owns the parallelism and requests do not
// multiply into workers × shards goroutines. The query is validated before
// the k == 0 short-circuit, so k never changes what is accepted. The caller
// has already passed the admission gate.
func (s *Server) topK(tok cancel.Token, query Query, k, shardWorkers int) ([]Assignment, error) {
	vstart := time.Now()
	if k < 0 {
		s.om.fail(opTopK)
		return nil, fmt.Errorf("prefmatch: negative k %d", k)
	}
	f, err := linearPref(query, s.ix.Dim())
	if err != nil {
		s.om.fail(opTopK)
		return nil, err
	}
	validate := time.Since(vstart)
	if k == 0 {
		return nil, nil
	}
	if s.sh != nil {
		return s.topKSharded(tok, query.ID, f, k, shardWorkers, validate)
	}
	return serve(s, opTopK, validate, func(snap index.ObjectIndex, c *stats.Counters) ([]Assignment, error) {
		return topkOver(snap, query.ID, f, k, tok, c)
	})
}

// topKSharded answers one top-k request on a sharded index by fanning ranked
// search across shardWorkers per-shard snapshot workers and merging through
// the score-ordered heap, with whole-shard MBR pruning. The per-shard
// counters are merged into one request sink and recorded into the server
// totals, exactly like any other request. Results are bit-identical to the
// unsharded path.
func (s *Server) topKSharded(tok cancel.Token, qid int, p prefs.Preference, k, shardWorkers int, validate time.Duration) ([]Assignment, error) {
	var tr reqTrace
	tr.begin(validate)
	c := &stats.Counters{}
	results, err := s.sh.SearchTopKCancel(p, k, shardWorkers, tok, c)
	tr.mark(stageTraverse)
	if err != nil {
		s.om.fail(opTopK)
		return nil, err
	}
	s.record(c, tr.stages[stageTraverse])
	tr.mark(stageMerge)
	s.om.finish(opTopK, &tr, c, 1)
	out := make([]Assignment, len(results))
	for i, r := range results {
		out[i] = Assignment{QueryID: qid, ObjectID: int(r.ID), Score: r.Score}
	}
	return out, nil
}

// TopKMonotone is TopK for an arbitrary monotone preference.
func (s *Server) TopKMonotone(query PreferenceQuery, k int) ([]Assignment, error) {
	return s.topKMonotone(cancel.Token{}, query, k)
}

func (s *Server) topKMonotone(tok cancel.Token, query PreferenceQuery, k int) (_ []Assignment, err error) {
	if err := s.admit(tok); err != nil {
		return nil, err
	}
	defer s.exitRequest()
	defer s.finishReq(opTopK, query.ID, &err)
	vstart := time.Now()
	if k < 0 {
		s.om.fail(opTopK)
		return nil, fmt.Errorf("prefmatch: negative k %d", k)
	}
	if query.Preference == nil {
		s.om.fail(opTopK)
		return nil, fmt.Errorf("prefmatch: preference query %d is nil", query.ID)
	}
	validate := time.Since(vstart)
	if k == 0 {
		return nil, nil
	}
	if s.sh != nil {
		return s.topKSharded(tok, query.ID, prefAdapter{p: query.Preference}, k, 0, validate)
	}
	return serve(s, opTopK, validate, func(snap index.ObjectIndex, c *stats.Counters) ([]Assignment, error) {
		return topkOver(snap, query.ID, prefAdapter{p: query.Preference}, k, tok, c)
	})
}

// batchChunk is how many queries a batched TopKMany request hands one
// shared-traversal searcher. Large enough that the tree's upper levels are
// read once for dozens of functions, small enough that chunks still fan out
// across workers and the blocked scoring kernels stay in cache.
const batchChunk = 64

// TopKMany answers independent top-k queries in query order, one result
// slice per query. The workload of the paper's serving framing: many users,
// one object set, every user wants their personal ranking — so instead of
// one ranked descent per query, queries are validated up front, grouped
// into chunks of at most batchChunk, and each chunk walks the tree once
// through a shared-traversal batch searcher (topk.BatchSearcher; on a
// sharded server, sharded.SearchTopKBatch per shard). Results are
// bit-identical to per-query TopK calls.
//
// Chunks are spread across workers goroutines (0 or negative means
// GOMAXPROCS). On a sharded server, workers is the total parallelism
// budget: it is spent on the per-chunk fan-out first, and whatever the
// chunk count leaves unused goes to each chunk's per-shard fan-out
// (workers=1 stays fully sequential).
func (s *Server) TopKMany(queries []Query, k, workers int) ([][]Assignment, error) {
	return s.topKMany(cancel.Token{}, queries, k, workers)
}

func (s *Server) topKMany(tok cancel.Token, queries []Query, k, workers int) (_ [][]Assignment, err error) {
	if err := s.admit(tok); err != nil {
		return nil, err
	}
	defer s.exitRequest()
	defer s.finishReq(opTopKMany, firstQID(queries), &err)
	vstart := time.Now()
	results := make([][]Assignment, len(queries))
	fns := make([]prefs.Preference, len(queries))
	errs := make([]error, len(queries))
	invalid := false
	for i, q := range queries {
		if k < 0 {
			errs[i] = fmt.Errorf("prefmatch: negative k %d", k)
			invalid = true
			continue
		}
		f, err := linearPref(q, s.ix.Dim())
		if err != nil {
			errs[i] = err
			invalid = true
			continue
		}
		fns[i] = f
	}
	if invalid {
		s.om.fail(opTopKMany)
		return nil, errors.Join(errs...)
	}
	// Chunks trace themselves concurrently; the call-level validation pass
	// is observed into the stage histogram here, once.
	s.om.stages[stageValidate].ObserveDuration(time.Since(vstart))
	if k == 0 {
		return results, nil
	}
	budget := workers
	if budget < 1 {
		budget = runtime.GOMAXPROCS(0)
	}
	chunks := (len(queries) + batchChunk - 1) / batchChunk
	shardWorkers := 1
	if s.sh != nil {
		if outer := clampWorkers(budget, chunks); outer > 0 && budget/outer > 1 {
			shardWorkers = budget / outer
		}
	}
	cerrs := make([]error, chunks)
	fanOut(chunks, budget, func(ci int) {
		cerrs[ci] = guard.Safe(func() error {
			lo := ci * batchChunk
			hi := lo + batchChunk
			if hi > len(queries) {
				hi = len(queries)
			}
			return s.topKChunk(tok, queries[lo:hi], fns[lo:hi], results[lo:hi], k, shardWorkers)
		})
	})
	if err := errors.Join(cerrs...); err != nil {
		return nil, err
	}
	return results, nil
}

// topKChunk answers one chunk of pre-validated queries with a single shared
// traversal, writing each query's assignments into results[i]. On a sharded
// server the chunk fans across shards batched (each surviving shard walked
// once for the whole chunk); otherwise it runs a pooled batch searcher over
// the pooled snapshot.
func (s *Server) topKChunk(tok cancel.Token, queries []Query, fns []prefs.Preference, results [][]Assignment, k, shardWorkers int) error {
	var tr reqTrace
	if s.sh != nil {
		tr.begin(0)
		c := &stats.Counters{}
		res, err := s.sh.SearchTopKBatchCancel(fns, k, shardWorkers, tok, c)
		tr.mark(stageTraverse)
		if err != nil {
			s.om.fail(opTopKMany)
			return err
		}
		for i, rs := range res {
			out := make([]Assignment, len(rs))
			for j, r := range rs {
				out[j] = Assignment{QueryID: queries[i].ID, ObjectID: int(r.ID), Score: r.Score}
			}
			results[i] = out
		}
		s.recordN(c, tr.stages[stageTraverse], len(queries))
		tr.mark(stageMerge)
		s.om.finish(opTopKMany, &tr, c, len(queries))
		return nil
	}
	tr.begin(0)
	sc := s.acquireScratch()
	tr.mark(stagePin)
	defer s.releaseScratch(sc)
	sc.ks = sc.ks[:0]
	for range fns {
		sc.ks = append(sc.ks, k)
	}
	b := topk.AcquireBatchSearcher(sc.snap, fns, sc.ks, &sc.c)
	defer b.Release()
	b.SetCancel(tok)
	if err := b.Run(); err != nil {
		s.om.fail(opTopKMany)
		return err
	}
	for i := range fns {
		sc.rbuf = b.AppendResults(i, sc.rbuf[:0])
		out := make([]Assignment, len(sc.rbuf))
		for j, r := range sc.rbuf {
			out[j] = Assignment{QueryID: queries[i].ID, ObjectID: int(r.ID), Score: r.Score}
		}
		results[i] = out
	}
	tr.mark(stageTraverse)
	s.recordN(&sc.c, tr.stages[stageTraverse], len(queries))
	tr.mark(stageMerge)
	s.om.finish(opTopKMany, &tr, &sc.c, len(queries))
	return nil
}

// TopKManyAppend is the allocation-free form of TopKMany for callers that
// recycle their result buffers: all assignments are appended flat to dst,
// and offsets is appended one entry per query plus a final boundary, so
// query i's ranking is dst[offsets[base+i]:offsets[base+i+1]] (base being
// len(offsets) on entry). The whole batch — at most batchChunk queries at a
// time — shares traversals exactly like TopKMany; query weights are
// normalised into a pooled arena (prefs.AppendFunction) instead of fresh
// slices, so a steady-state call over the memory backend performs zero
// allocations once dst and offsets have grown to capacity. The batch runs
// on the calling goroutine.
func (s *Server) TopKManyAppend(dst []Assignment, offsets []int, queries []Query, k int) ([]Assignment, []int, error) {
	return s.topKManyAppend(cancel.Token{}, dst, offsets, queries, k)
}

// topKManyAppend is TopKManyAppend behind the admission gate. The gate and
// the deferred classifier are both allocation-free (fixed-site defers, an
// atomic-and-channel admit), so the gated path stays at zero allocations —
// the CI alloc gate pins this with a MaxInFlight server and a live context.
func (s *Server) topKManyAppend(tok cancel.Token, dst []Assignment, offsets []int, queries []Query, k int) (_ []Assignment, _ []int, err error) {
	if err := s.admit(tok); err != nil {
		return dst, offsets, err
	}
	defer s.exitRequest()
	defer s.finishReq(opTopKMany, firstQID(queries), &err)
	vstart := time.Now()
	if k < 0 {
		s.om.fail(opTopKMany)
		return dst, offsets, fmt.Errorf("prefmatch: negative k %d", k)
	}
	sc := s.acquireScratch()
	defer s.releaseScratch(sc)
	d := s.ix.Dim()
	for _, q := range queries {
		if len(q.Weights) != d {
			s.om.fail(opTopKMany)
			return dst, offsets, fmt.Errorf("prefmatch: query %d has %d weights, want %d", q.ID, len(q.Weights), d)
		}
		f, arena, err := prefs.AppendFunction(sc.arena, q.ID, q.Weights)
		if err != nil {
			s.om.fail(opTopKMany)
			return dst, offsets, fmt.Errorf("prefmatch: query %d: %w", q.ID, err)
		}
		sc.arena = arena
		sc.fnvals = append(sc.fnvals, f)
	}
	// Chunks trace themselves; the call-level validation and function
	// building pass is observed into the stage histogram here, once.
	s.om.stages[stageValidate].ObserveDuration(time.Since(vstart))
	// Box pointers, not values: *Function rides in the interface word, so a
	// warm scratch builds the whole batch without a single allocation. Taken
	// only after fnvals stops growing — appends may move the backing array.
	for i := range sc.fnvals {
		sc.fns = append(sc.fns, &sc.fnvals[i])
	}
	if k == 0 {
		for range queries {
			offsets = append(offsets, len(dst))
		}
		offsets = append(offsets, len(dst))
		return dst, offsets, nil
	}
	for lo := 0; lo < len(queries); lo += batchChunk {
		hi := lo + batchChunk
		if hi > len(queries) {
			hi = len(queries)
		}
		dst, offsets, err = s.topKChunkAppend(tok, dst, offsets, queries[lo:hi], sc.fns[lo:hi], k, sc)
		if err != nil {
			return dst, offsets, err
		}
	}
	offsets = append(offsets, len(dst))
	return dst, offsets, nil
}

// topKChunkAppend is topKChunk in append form, emitting boundaries instead
// of per-query slices. It reuses the caller's scratch for everything but
// the sharded fan-out (which allocates its merge state per call).
func (s *Server) topKChunkAppend(tok cancel.Token, dst []Assignment, offsets []int, queries []Query, fns []prefs.Preference, k int, sc *serveScratch) ([]Assignment, []int, error) {
	var tr reqTrace
	tr.begin(0)
	if s.sh != nil {
		c := &stats.Counters{}
		res, err := s.sh.SearchTopKBatchCancel(fns, k, 1, tok, c)
		tr.mark(stageTraverse)
		if err != nil {
			s.om.fail(opTopKMany)
			return dst, offsets, err
		}
		for i, rs := range res {
			offsets = append(offsets, len(dst))
			for _, r := range rs {
				dst = append(dst, Assignment{QueryID: queries[i].ID, ObjectID: int(r.ID), Score: r.Score})
			}
		}
		s.recordN(c, tr.stages[stageTraverse], len(queries))
		tr.mark(stageMerge)
		s.om.finish(opTopKMany, &tr, c, len(queries))
		return dst, offsets, nil
	}
	sc.ks = sc.ks[:0]
	for range fns {
		sc.ks = append(sc.ks, k)
	}
	b := topk.AcquireBatchSearcher(sc.snap, fns, sc.ks, &sc.c)
	defer b.Release()
	b.SetCancel(tok)
	if err := b.Run(); err != nil {
		s.om.fail(opTopKMany)
		return dst, offsets, err
	}
	for i := range fns {
		sc.rbuf = b.AppendResults(i, sc.rbuf[:0])
		offsets = append(offsets, len(dst))
		for _, r := range sc.rbuf {
			dst = append(dst, Assignment{QueryID: queries[i].ID, ObjectID: int(r.ID), Score: r.Score})
		}
	}
	tr.mark(stageTraverse)
	s.recordN(&sc.c, tr.stages[stageTraverse], len(queries))
	tr.mark(stageMerge)
	s.om.finish(opTopKMany, &tr, &sc.c, len(queries))
	// The scratch is shared by every chunk of this call; zero its sink so
	// the next chunk's recordN does not re-add this chunk's work.
	sc.c = stats.Counters{}
	return dst, offsets, nil
}

// Skyline returns the ascending IDs of the non-dominated objects, computed
// over a snapshot. Safe for concurrent use.
func (s *Server) Skyline() ([]int, error) {
	return s.skyline(cancel.Token{})
}

func (s *Server) skyline(tok cancel.Token) (_ []int, err error) {
	if err := s.admit(tok); err != nil {
		return nil, err
	}
	defer s.exitRequest()
	defer s.finishReq(opSkyline, -1, &err)
	return serve(s, opSkyline, 0, func(snap index.ObjectIndex, c *stats.Counters) ([]int, error) {
		return skylineOver(snap, tok, c)
	})
}

// clampWorkers normalises a worker-count option against a job count: zero
// or negative means GOMAXPROCS, and more workers than jobs is clamped to
// jobs, so no spawned goroutine can be idle from the start. The single
// place this package interprets worker counts — MatchMany, TopKMany and
// fanOut all route through it and must not re-derive the rule.
// (sharded.SearchTopK applies the same rule to its own shard-level
// workers; the two budgets never nest, see topK.)
func clampWorkers(workers, jobs int) int {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > jobs {
		workers = jobs
	}
	return workers
}

// fanOut runs jobs 0..n-1 across workers goroutines (normalised by
// clampWorkers), pulling indices from a shared atomic cursor so fast
// workers absorb slow jobs.
func fanOut(n, workers int, job func(int)) {
	workers = clampWorkers(workers, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				job(i)
			}
		}()
	}
	wg.Wait()
}
