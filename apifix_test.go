// Regression tests for public-API option/validation drift: MatchMonotone
// must not silently drop DisableTightThreshold, Verify must validate inputs
// exactly like Match, and Matcher must expose its emission count.
package prefmatch_test

import (
	"strings"
	"testing"

	"prefmatch"
)

func TestMatchMonotoneRejectsDisableTightThreshold(t *testing.T) {
	objs := []prefmatch.Object{
		{ID: 1, Values: []float64{0.9, 0.1}},
		{ID: 2, Values: []float64{0.6, 0.6}},
	}
	qs := []prefmatch.PreferenceQuery{
		{ID: 5, Preference: prefmatch.LinearPreference{Weights: []float64{1, 1}}},
	}
	// The flag only exists for the linear TA engine; the generic engine has
	// no threshold to loosen, so the option must be rejected, not ignored.
	_, err := prefmatch.MatchMonotone(objs, qs, &prefmatch.Options{DisableTightThreshold: true})
	if err == nil {
		t.Fatal("DisableTightThreshold silently accepted by MatchMonotone")
	}
	if !strings.Contains(err.Error(), "DisableTightThreshold") {
		t.Fatalf("error does not name the rejected option: %v", err)
	}
	// Without the flag the same inputs still match.
	if _, err := prefmatch.MatchMonotone(objs, qs, nil); err != nil {
		t.Fatal(err)
	}
}

// TestVerifyMatchValidityAgreement feeds the same malformed inputs to Match
// and Verify: every input Match rejects, Verify must reject too (the seed
// behaviour accepted duplicate IDs, 32-bit IDs and ragged dimensions).
func TestVerifyMatchValidityAgreement(t *testing.T) {
	good := []prefmatch.Object{
		{ID: 1, Values: []float64{0.9, 0.1}},
		{ID: 2, Values: []float64{0.2, 0.8}},
	}
	goodQ := []prefmatch.Query{{ID: 1, Weights: []float64{1, 2}}}
	res, err := prefmatch.Match(good, goodQ, nil)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		objs []prefmatch.Object
		qs   []prefmatch.Query
	}{
		{"no objects", nil, goodQ},
		{"no queries", good, nil},
		{"zero-dimensional objects", []prefmatch.Object{{ID: 1}, {ID: 2}}, goodQ},
		{"duplicate object IDs", []prefmatch.Object{
			{ID: 1, Values: []float64{0.9, 0.1}},
			{ID: 1, Values: []float64{0.2, 0.8}},
		}, goodQ},
		{"object ID out of 31-bit range", []prefmatch.Object{
			{ID: 1 << 31, Values: []float64{0.9, 0.1}},
			{ID: 2, Values: []float64{0.2, 0.8}},
		}, goodQ},
		{"negative object ID", []prefmatch.Object{
			{ID: -1, Values: []float64{0.9, 0.1}},
			{ID: 2, Values: []float64{0.2, 0.8}},
		}, goodQ},
		{"ragged object dimensions", []prefmatch.Object{
			{ID: 1, Values: []float64{0.9, 0.1}},
			{ID: 2, Values: []float64{0.2, 0.8, 0.5}},
		}, goodQ},
		{"negative capacity", []prefmatch.Object{
			{ID: 1, Values: []float64{0.9, 0.1}, Capacity: -2},
			{ID: 2, Values: []float64{0.2, 0.8}},
		}, goodQ},
		{"query dimension mismatch", good, []prefmatch.Query{{ID: 1, Weights: []float64{1, 2, 3}}}},
		{"negative query weight", good, []prefmatch.Query{{ID: 1, Weights: []float64{1, -2}}}},
		{"all-zero query weights", good, []prefmatch.Query{{ID: 1, Weights: []float64{0, 0}}}},
		{"duplicate query IDs", good, []prefmatch.Query{
			{ID: 1, Weights: []float64{1, 2}},
			{ID: 1, Weights: []float64{2, 1}},
		}},
	}
	for _, tc := range cases {
		if _, err := prefmatch.Match(tc.objs, tc.qs, nil); err == nil {
			t.Errorf("%s: accepted by Match", tc.name)
		}
		if err := prefmatch.Verify(tc.objs, tc.qs, res.Assignments); err == nil {
			t.Errorf("%s: rejected by Match but accepted by Verify", tc.name)
		}
	}

	// And the valid input stays valid end to end.
	if err := prefmatch.Verify(good, goodQ, res.Assignments); err != nil {
		t.Fatalf("valid matching rejected: %v", err)
	}
}

func TestMatcherEmitted(t *testing.T) {
	objs := []prefmatch.Object{
		{ID: 1, Values: []float64{0.9, 0.1}},
		{ID: 2, Values: []float64{0.2, 0.8}},
		{ID: 3, Values: []float64{0.5, 0.5}},
	}
	qs := []prefmatch.Query{
		{ID: 1, Weights: []float64{1, 2}},
		{ID: 2, Weights: []float64{2, 1}},
	}
	m, err := prefmatch.NewMatcher(objs, qs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Emitted() != 0 {
		t.Fatalf("Emitted() = %d before first Next", m.Emitted())
	}
	n := int64(0)
	for {
		_, ok, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
		if m.Emitted() != n {
			t.Fatalf("Emitted() = %d after %d assignments", m.Emitted(), n)
		}
	}
	if n != 2 {
		t.Fatalf("drained %d assignments, want 2", n)
	}
	if m.Emitted() != 2 {
		t.Fatalf("Emitted() = %d after drain", m.Emitted())
	}
}
