// Quickstart: the smallest end-to-end use of prefmatch.
//
// Three users search a four-room inventory with different priorities. Each
// room attribute is a goodness score in [0, 1] (larger = better); each user
// supplies weights saying how much each attribute matters. prefmatch
// returns the fair one-to-one assignment: pairs are matched best-score
// first, and every match is stable — no unmatched user values the room more
// than its owner, and the owner values no unmatched room more.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"prefmatch"
)

func main() {
	// Rooms scored on (size, cheapness, beach proximity).
	rooms := []prefmatch.Object{
		{ID: 101, Values: []float64{0.9, 0.2, 0.8}}, // big, pricey, near beach
		{ID: 102, Values: []float64{0.4, 0.9, 0.3}}, // small, cheap, inland
		{ID: 103, Values: []float64{0.7, 0.6, 0.9}}, // balanced, near beach
		{ID: 104, Values: []float64{0.5, 0.8, 0.5}}, // modest all round
	}

	// Users weight the attributes; weights are normalised internally.
	users := []prefmatch.Query{
		{ID: 1, Weights: []float64{1, 1, 8}}, // wants the beach
		{ID: 2, Weights: []float64{1, 8, 1}}, // wants a bargain
		{ID: 3, Weights: []float64{8, 1, 1}}, // wants space
	}

	res, err := prefmatch.Match(rooms, users, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("assignments (best score first):")
	for _, a := range res.Assignments {
		fmt.Printf("  user %d -> room %d (score %.3f)\n", a.QueryID, a.ObjectID, a.Score)
	}

	// The result is verifiable: Verify re-checks stability of every pair.
	if err := prefmatch.Verify(rooms, users, res.Assignments); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("verified: the matching is stable")
	fmt.Printf("work: %d I/O accesses, %d skyline updates, %v elapsed\n",
		res.Stats.IOAccesses, res.Stats.SkylineUpdates, res.Stats.Elapsed)
}
