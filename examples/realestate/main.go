// Real estate: a Zillow-style listing site (the paper's Figure 3 workload),
// demonstrating the progressive API.
//
// Listings carry five attributes — bathrooms, bedrooms, living area, price
// and lot size — that are discrete, skewed and correlated like real data.
// Buyers register weighted preferences. The progressive matcher streams
// assignments best-first, so the site can notify the most contested buyers
// immediately while the rest of the matching is still being computed.
//
// Run with:
//
//	go run ./examples/realestate
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"prefmatch"
)

const (
	numListings = 50000
	numBuyers   = 1000
)

// newListing synthesises one property record, converting every attribute to
// a goodness score in [0, 1] (price inverted: cheaper is better).
func newListing(id int, rng *rand.Rand) prefmatch.Object {
	beds := 1 + rng.Intn(7)
	baths := int(math.Max(1, math.Min(6, math.Round(float64(beds)*0.6+rng.NormFloat64()*0.7))))
	area := math.Exp(math.Log(450+330*float64(beds)) + rng.NormFloat64()*0.28)
	price := area * math.Exp(math.Log(160)+rng.NormFloat64()*0.45)
	lot := math.Exp(math.Log(area*2.5) + rng.NormFloat64()*0.8)
	logScale := func(v, lo, hi float64) float64 {
		if v <= lo {
			return 0
		}
		if v >= hi {
			return 1
		}
		return math.Log(v/lo) / math.Log(hi/lo)
	}
	return prefmatch.Object{
		ID: id,
		Values: []float64{
			float64(baths-1) / 5.0,
			float64(beds-1) / 7.0,
			logScale(area, 300, 8000),
			1 - logScale(price, 30e3, 5e6),
			logScale(lot, 500, 200e3),
		},
	}
}

func main() {
	rng := rand.New(rand.NewSource(3))
	listings := make([]prefmatch.Object, numListings)
	for i := range listings {
		listings[i] = newListing(i, rng)
	}
	buyers := make([]prefmatch.Query, numBuyers)
	for i := range buyers {
		// Buyers weight (baths, beds, area, cheapness, lot) differently.
		w := make([]float64, 5)
		for j := range w {
			w[j] = rng.Float64() + 0.05
		}
		buyers[i] = prefmatch.Query{ID: i, Weights: w}
	}

	m, err := prefmatch.NewMatcher(listings, buyers, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("streaming the first 10 of %d assignments (most contested first):\n", numBuyers)
	var all []prefmatch.Assignment
	for {
		a, ok, err := m.Next()
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		if len(all) < 10 {
			l := listings[a.ObjectID]
			fmt.Printf("  buyer %4d -> listing %6d  score %.4f  (baths %.1f beds %.1f area %.2f cheap %.2f lot %.2f)\n",
				a.QueryID, a.ObjectID, a.Score, l.Values[0]*5+1, l.Values[1]*7+1, l.Values[2], l.Values[3], l.Values[4])
		}
		all = append(all, a)
	}

	s := m.Stats()
	fmt.Printf("\nmatched %d buyers over %d listings\n", len(all), numListings)
	fmt.Printf("I/O accesses: %d   skyline updates: %d   max skyline: %d   elapsed: %v\n",
		s.IOAccesses, s.SkylineUpdates, s.SkylineMax, s.Elapsed.Round(1000))

	if err := prefmatch.Verify(listings, buyers, all); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("verified: every assignment is stable")
}
