// Hotel booking: the paper's motivating scenario at realistic scale.
//
// A popular reservation site receives a burst of simultaneous searches.
// Every user ranks rooms by personal weights over (size, cheapness, beach
// proximity, rating); many users' top choice is the same handful of rooms,
// but each room can host only one booking. The example builds a 20,000-room
// inventory, runs 500 concurrent queries through each of the paper's three
// algorithms, and reports the I/O and time gap that motivates the
// skyline-based method.
//
// Run with:
//
//	go run ./examples/hotelbooking
package main

import (
	"fmt"
	"log"
	"math/rand"

	"prefmatch"
)

const (
	numRooms = 20000
	numUsers = 500
)

func buildInventory(rng *rand.Rand) []prefmatch.Object {
	rooms := make([]prefmatch.Object, numRooms)
	for i := range rooms {
		// Correlations mirror reality: bigger rooms cost more (lower
		// cheapness), beachfront property is pricier still.
		size := rng.Float64()
		beach := rng.Float64()
		price := 0.3*size + 0.4*beach + 0.3*rng.Float64() // higher = pricier
		rating := clamp01(0.35*size + 0.15*beach + 0.5*rng.Float64())
		rooms[i] = prefmatch.Object{
			ID:     i,
			Values: []float64{size, 1 - price, beach, rating},
		}
	}
	return rooms
}

func buildUsers(rng *rand.Rand) []prefmatch.Query {
	users := make([]prefmatch.Query, numUsers)
	archetypes := [][]float64{
		{1, 1, 6, 2}, // beach lovers
		{1, 6, 1, 2}, // bargain hunters
		{6, 1, 1, 2}, // families wanting space
		{1, 1, 1, 7}, // review readers
		{1, 1, 1, 1}, // no strong preference
	}
	for i := range users {
		base := archetypes[rng.Intn(len(archetypes))]
		w := make([]float64, len(base))
		for j := range w {
			w[j] = base[j] * (0.5 + rng.Float64()) // personal variation
		}
		users[i] = prefmatch.Query{ID: i, Weights: w}
	}
	return users
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func main() {
	rng := rand.New(rand.NewSource(2009))
	rooms := buildInventory(rng)
	users := buildUsers(rng)

	fmt.Printf("matching %d users against %d rooms\n\n", numUsers, numRooms)
	fmt.Printf("%-12s %12s %12s %14s %12s\n", "algorithm", "I/O accesses", "top-1 runs", "sky updates", "elapsed")

	var reference map[int]int
	for _, alg := range []prefmatch.Algorithm{prefmatch.SkylineBased, prefmatch.BruteForce, prefmatch.Chain} {
		res, err := prefmatch.Match(rooms, users, &prefmatch.Options{Algorithm: alg})
		if err != nil {
			log.Fatal(err)
		}
		s := res.Stats
		fmt.Printf("%-12s %12d %12d %14d %12v\n", alg, s.IOAccesses, s.Top1Searches, s.SkylineUpdates, s.Elapsed.Round(1000))

		assign := map[int]int{}
		for _, a := range res.Assignments {
			assign[a.QueryID] = a.ObjectID
		}
		if reference == nil {
			reference = assign
		} else {
			for q, o := range reference {
				if assign[q] != o {
					log.Fatalf("%v disagrees on user %d", alg, q)
				}
			}
		}
	}

	// Show a few concrete outcomes from the skyline-based run.
	res, err := prefmatch.Match(rooms, users, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfirst assignments (highest scores — the most contested matches):")
	for _, a := range res.Assignments[:5] {
		room := rooms[a.ObjectID]
		fmt.Printf("  user %3d -> room %5d  score %.3f  (size %.2f cheap %.2f beach %.2f rating %.2f)\n",
			a.QueryID, a.ObjectID, a.Score, room.Values[0], room.Values[1], room.Values[2], room.Values[3])
	}
	fmt.Println("\nall three algorithms produced the identical stable matching.")
}
