// Job dispatch: assigning scarce build machines to competing CI jobs —
// a non-spatial use of stable preference matching, with more queries than
// objects.
//
// Machines are scored on (CPU speed, memory, cache warmth, queue
// emptiness); each pending job weighs these differently (a compile job
// wants CPU, a test-sharding job wants memory, an incremental build wants a
// warm cache). With fewer machines than jobs, prefmatch assigns machines to
// the jobs that benefit most, stably: no unserved job values a machine more
// than the job holding it.
//
// Run with:
//
//	go run ./examples/jobdispatch
package main

import (
	"fmt"
	"log"
	"math/rand"

	"prefmatch"
)

const (
	numMachines = 64
	numJobs     = 200
)

var jobKinds = []struct {
	name    string
	weights []float64
}{
	{"compile", []float64{6, 2, 1, 1}},
	{"test", []float64{2, 6, 1, 1}},
	{"incremental", []float64{1, 1, 7, 1}},
	{"latency-sensitive", []float64{2, 1, 1, 6}},
}

func main() {
	rng := rand.New(rand.NewSource(7))

	machines := make([]prefmatch.Object, numMachines)
	for i := range machines {
		machines[i] = prefmatch.Object{
			ID: i,
			Values: []float64{
				rng.Float64(), // normalised CPU speed
				rng.Float64(), // normalised memory
				rng.Float64(), // cache warmth
				rng.Float64(), // queue emptiness
			},
		}
	}

	jobs := make([]prefmatch.Query, numJobs)
	kinds := make([]string, numJobs)
	for i := range jobs {
		k := jobKinds[rng.Intn(len(jobKinds))]
		kinds[i] = k.name
		w := make([]float64, len(k.weights))
		for j := range w {
			w[j] = k.weights[j] * (0.7 + 0.6*rng.Float64())
		}
		jobs[i] = prefmatch.Query{ID: i, Weights: w}
	}

	res, err := prefmatch.Match(machines, jobs, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d machines, %d jobs: %d dispatched, %d queued for the next wave\n\n",
		numMachines, numJobs, len(res.Assignments), numJobs-len(res.Assignments))

	served := map[string]int{}
	for _, a := range res.Assignments {
		served[kinds[a.QueryID]]++
	}
	total := map[string]int{}
	for _, k := range kinds {
		total[k]++
	}
	fmt.Println("dispatch rate by job kind:")
	for _, k := range jobKinds {
		fmt.Printf("  %-18s %3d / %3d\n", k.name, served[k.name], total[k.name])
	}

	fmt.Println("\nhighest-value dispatches:")
	for _, a := range res.Assignments[:5] {
		m := machines[a.ObjectID]
		fmt.Printf("  job %3d (%s) -> machine %2d  score %.3f  (cpu %.2f mem %.2f cache %.2f queue %.2f)\n",
			a.QueryID, kinds[a.QueryID], a.ObjectID, a.Score, m.Values[0], m.Values[1], m.Values[2], m.Values[3])
	}

	if err := prefmatch.Verify(machines, jobs, res.Assignments); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("\nverified: no queued job values any machine more than the job that holds it")
}
