// Room types: capacitated matching. Hotels sell room *types* — a "deluxe
// double, sea view" is not one room but forty identical ones. Setting
// Object.Capacity lets one object absorb several queries, so the matcher
// works on types instead of exploding the inventory into identical rows.
//
// The example also shows MatchMonotone with a custom non-linear utility:
// one guest segment uses a "weakest attribute" preference (a room is only
// as good as its worst aspect), which no weight vector can express.
//
// Run with:
//
//	go run ./examples/roomtypes
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"prefmatch"
)

type roomType struct {
	name  string
	units int
	size  float64 // all goodness scores in [0,1]
	cheap float64
	beach float64
	quiet float64
}

// pickiest scores a room by its weakest weighted attribute: balanced rooms
// win, any single flaw caps the score. Monotone, but not linear.
type pickiest struct{ w []float64 }

func (p pickiest) Score(values []float64) float64 {
	s := math.Inf(1)
	for i, w := range p.w {
		if v := w * values[i]; v < s {
			s = v
		}
	}
	return s
}

func main() {
	types := []roomType{
		{"economy inland double", 60, 0.30, 0.95, 0.10, 0.40},
		{"standard garden double", 40, 0.45, 0.70, 0.35, 0.65},
		{"deluxe sea-view double", 40, 0.60, 0.40, 0.90, 0.55},
		{"family suite", 25, 0.90, 0.25, 0.60, 0.50},
		{"penthouse", 4, 1.00, 0.05, 0.95, 0.95},
	}
	objects := make([]prefmatch.Object, len(types))
	for i, rt := range types {
		objects[i] = prefmatch.Object{
			ID:       i,
			Values:   []float64{rt.size, rt.cheap, rt.beach, rt.quiet},
			Capacity: rt.units,
		}
	}

	rng := rand.New(rand.NewSource(11))
	const numGuests = 150
	queries := make([]prefmatch.Query, numGuests)
	for i := range queries {
		w := make([]float64, 4)
		for j := range w {
			w[j] = rng.Float64() + 0.05
		}
		w[rng.Intn(4)] += 2 // every guest has one dominant concern
		queries[i] = prefmatch.Query{ID: i, Weights: w}
	}

	res, err := prefmatch.Match(objects, queries, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := prefmatch.Verify(objects, queries, res.Assignments); err != nil {
		log.Fatalf("verification failed: %v", err)
	}

	sold := make([]int, len(types))
	for _, a := range res.Assignments {
		sold[a.ObjectID]++
	}
	fmt.Printf("%d guests, %d room types (%d units total)\n\n", numGuests, len(types), totalUnits(types))
	fmt.Printf("%-24s %7s %7s\n", "room type", "units", "sold")
	for i, rt := range types {
		fmt.Printf("%-24s %7d %7d\n", rt.name, rt.units, sold[i])
	}
	fmt.Printf("\n%d guests matched; every sale is stable (no unserved guest\n", len(res.Assignments))
	fmt.Println("values a room type more than any guest holding a unit of it).")

	// A picky guest segment with a non-linear utility, via MatchMonotone.
	picky := make([]prefmatch.PreferenceQuery, 20)
	for i := range picky {
		w := []float64{1 + rng.Float64(), 1 + rng.Float64(), 1 + rng.Float64(), 1 + rng.Float64()}
		picky[i] = prefmatch.PreferenceQuery{ID: i, Preference: pickiest{w: w}}
	}
	flat := make([]prefmatch.Object, len(objects))
	copy(flat, objects)
	for i := range flat {
		flat[i].Capacity = 0 // one representative unit per type for the demo
	}
	pickyRes, err := prefmatch.MatchMonotone(flat, picky, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npicky guests (weakest-attribute utility), one unit per type:")
	for _, a := range pickyRes.Assignments {
		fmt.Printf("  guest %2d -> %-24s score %.3f\n", a.QueryID, types[a.ObjectID].name, a.Score)
	}
}

func totalUnits(types []roomType) int {
	t := 0
	for _, rt := range types {
		t += rt.units
	}
	return t
}
